// Package cluster is the distributed serving subsystem: one store-backed
// engine per partition behind a common Partition interface (in-process
// or HTTP/JSON remote), a routing Broker that keeps per-partition
// term→document-frequency sketches and prunes partitions that cannot
// match a query, and a Coordinator that scatters a query to the routed
// partitions, gathers their wire-form answers, and merges them into the
// global top-k under the engine's canonical (table, rid) tie-break.
//
// Partitioning follows the (table, row-range) build sharding: every
// partition holds every table, with each table's rows split into
// contiguous chunks (split.go). Partition graphs keep the source's
// global score normalizers and prestige, so partition-local trees score
// bit-identically to the single-engine search.
//
// Completeness bound: a distributed query finds every answer whose
// connection tree lies entirely within one partition, with its exact
// single-engine score; trees crossing partition boundaries are not
// found (boundary-arc stitching is deferred). Consequently a reported
// root's score is a lower bound on the single engine's score for that
// root: when the globally best tree for a root crosses the cut, the
// partition reports its best cut-local tree instead — never a tree the
// full graph lacks, never a higher score. Stats.PartitionLocalBound
// reports the bound on every multi-partition query, alongside
// partitions routed/pruned.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Coordinator is the scatter-gather front: it owns the partitions, the
// routing broker, and the merge.
type Coordinator struct {
	parts  []Partition
	metas  []Meta
	broker *Broker
	tids   map[string]int32

	queries atomic.Int64 // distributed queries executed
	routed  atomic.Int64 // partition legs scattered
	pruned  atomic.Int64 // partition legs pruned by the broker
}

// NewCoordinator performs the handshake: fetches every partition's Meta,
// verifies the table sets agree (the cross-partition merge keys answers
// by table id), decodes the routing sketches, and returns the ready
// front. The caller keeps ownership of the partitions' lifetime unless
// it uses Close.
func NewCoordinator(ctx context.Context, parts []Partition) (*Coordinator, error) {
	if len(parts) == 0 {
		return nil, errors.New("cluster: no partitions")
	}
	c := &Coordinator{parts: parts, tids: make(map[string]int32)}
	sketches := make([]*Sketch, len(parts))
	for i, p := range parts {
		m, err := p.Meta(ctx)
		if err != nil {
			return nil, fmt.Errorf("cluster: partition %s handshake: %w", p.Name(), err)
		}
		if m.Name == "" {
			m.Name = p.Name()
		}
		if i == 0 {
			for t, name := range m.Tables {
				c.tids[strings.ToLower(name)] = int32(t)
			}
		} else if !sameTables(c.metas[0].Tables, m.Tables) {
			return nil, fmt.Errorf("cluster: partition %s tables %v disagree with %s tables %v",
				p.Name(), m.Tables, parts[0].Name(), c.metas[0].Tables)
		}
		if len(m.Sketch) > 0 {
			sk, err := DecodeSketch(m.Sketch)
			if err != nil {
				return nil, fmt.Errorf("cluster: partition %s: %w", p.Name(), err)
			}
			sketches[i] = sk
		}
		c.metas = append(c.metas, m)
	}
	c.broker = NewBroker(sketches)
	return c, nil
}

func sameTables(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Partitions returns the handshake-time descriptions, by partition index.
func (c *Coordinator) Partitions() []Meta { return c.metas }

// TableIDs returns the cluster's table-name → table-id map (shared by
// every partition), for callers that merge wire answers themselves.
func (c *Coordinator) TableIDs() map[string]int32 { return c.tids }

// RoutingStats is the coordinator's cumulative routing telemetry.
type RoutingStats struct {
	Queries          int64 // distributed queries executed
	PartitionsRouted int64 // scatter legs sent
	PartitionsPruned int64 // scatter legs avoided by the broker
}

// Routing returns cumulative routing counters (safe for concurrent use).
func (c *Coordinator) Routing() RoutingStats {
	return RoutingStats{
		Queries:          c.queries.Load(),
		PartitionsRouted: c.routed.Load(),
		PartitionsPruned: c.pruned.Load(),
	}
}

// Query scatters req to the routed partitions, gathers, and merges. Any
// partition error fails the query (partial fan-in is not served as a
// complete answer). The merged Stats carry the routing decision and, on
// multi-partition clusters, the partition-local completeness bound.
func (c *Coordinator) Query(ctx context.Context, req Request) (*Result, error) {
	clean := make([]string, 0, len(req.Terms))
	for _, t := range req.Terms {
		t = strings.TrimSpace(strings.ToLower(t))
		if t != "" {
			clean = append(clean, t)
		}
	}
	if len(clean) == 0 {
		return nil, errors.New("cluster: empty query")
	}

	scatterAll := req.Qualified || req.Prefix
	routed := c.broker.Route(clean, req.RequireAllTerms && !scatterAll, scatterAll)
	c.queries.Add(1)
	c.routed.Add(int64(len(routed)))
	c.pruned.Add(int64(len(c.parts) - len(routed)))

	results := make([]*Result, len(routed))
	errs := make([]error, len(routed))
	var wg sync.WaitGroup
	for i, p := range routed {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			results[i], errs[i] = c.parts[p].Query(ctx, req)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: scatter to %s: %w", c.parts[routed[i]].Name(), err)
		}
	}

	lists := make([][]Answer, len(results))
	stats := make([]Stats, len(results))
	for i, r := range results {
		lists[i] = r.Answers
		stats[i] = r.Stats
	}
	out := &Result{Answers: MergeAnswers(c.tids, lists, req.TopK)}
	merged := MergeStats(stats, clean)
	merged.PartitionsTotal = len(c.parts)
	merged.PartitionsRouted = len(routed)
	merged.PartitionsPruned = len(c.parts) - len(routed)
	merged.PartitionLocalBound = len(c.parts) > 1
	out.Stats = merged
	return out, nil
}

// Close closes every partition, returning the first error.
func (c *Coordinator) Close() error {
	var first error
	for _, p := range c.parts {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
