package cluster

// The Partition interface and its in-process implementation. A Partition
// is one shard of the cluster: a store-backed engine that answers
// scatter-gather queries in wire form and describes itself (tables,
// size, routing sketch) at handshake time. Local runs in-process over an
// open store or a built engine; Remote (remote.go) adapts the same
// interface over HTTP/JSON so partitions can live in separate processes.

import (
	"context"
	"fmt"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/store"
)

// Partition is one shard of a partitioned cluster.
type Partition interface {
	// Name identifies the partition in stats, metrics and errors.
	Name() string
	// Meta describes the partition: table set (all partitions of a
	// cluster must agree), size, and the encoded routing sketch.
	Meta(ctx context.Context) (Meta, error)
	// Query runs one scatter-gather leg against the partition-local
	// engine and returns wire-form answers.
	Query(ctx context.Context, req Request) (*Result, error)
	// Close releases the partition's resources.
	Close() error
}

// Local is an in-process partition over a store-backed (or directly
// built) engine.
type Local struct {
	name   string
	st     *store.Store // nil for engine-backed partitions
	g      *graph.Graph
	ix     *index.Index
	s      *core.Searcher
	sketch []byte
}

// OpenLocal opens the partition store at path as an in-process partition.
// budgetBytes bounds the store's decoded-block cache (0: unbounded).
func OpenLocal(name, path string, budgetBytes int64) (*Local, error) {
	st, err := store.Open(path, store.Options{BudgetBytes: budgetBytes})
	if err != nil {
		return nil, err
	}
	sketch, err := st.TermStats()
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("cluster: partition %s: reading term stats: %w", name, err)
	}
	l := &Local{
		name:   name,
		st:     st,
		g:      st.Graph(),
		ix:     st.Index(),
		sketch: sketch,
	}
	l.s = core.NewSearcher(l.g, l.ix).WithFaultMeter(st.FaultedBytes)
	return l, nil
}

// NewLocalEngine wraps an already-built engine (no store) as a partition;
// sketch may be nil (the broker then always routes here).
func NewLocalEngine(name string, g *graph.Graph, ix *index.Index, sketch []byte) *Local {
	return &Local{
		name:   name,
		g:      g,
		ix:     ix,
		s:      core.NewSearcher(g, ix),
		sketch: sketch,
	}
}

// Name implements Partition.
func (l *Local) Name() string { return l.name }

// Meta implements Partition.
func (l *Local) Meta(ctx context.Context) (Meta, error) {
	m := Meta{
		Name:   l.name,
		Nodes:  l.g.NumNodes(),
		Arcs:   l.g.NumArcs(),
		Sketch: l.sketch,
	}
	for t := int32(0); t < int32(l.g.NumTables()); t++ {
		m.Tables = append(m.Tables, l.g.TableName(t))
	}
	return m, nil
}

// Query implements Partition: the plain backward expanding search over
// the partition-local engine, pinned against a concurrent Close.
func (l *Local) Query(ctx context.Context, req Request) (*Result, error) {
	if l.st != nil {
		if !l.st.Acquire() {
			return nil, fmt.Errorf("cluster: partition %s is closed", l.name)
		}
		defer l.st.Release()
	}
	answers, stats, err := l.s.Query(ctx, core.Request{
		Terms:     req.Terms,
		Qualified: req.Qualified,
		Prefix:    req.Prefix,
	}, req.CoreOptions(), nil)
	if err != nil {
		return nil, err
	}
	if l.st != nil {
		if serr := l.st.Err(); serr != nil {
			return nil, fmt.Errorf("cluster: partition %s: %w", l.name, serr)
		}
	}
	res := &Result{Stats: StatsFromCore(stats)}
	for _, a := range answers {
		res.Answers = append(res.Answers, answerToWire(l.g, a))
	}
	return res, nil
}

// Close implements Partition.
func (l *Local) Close() error {
	if l.st != nil {
		return l.st.Close()
	}
	return nil
}
