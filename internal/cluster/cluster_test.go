package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/store"
)

// buildEngine builds the small-DBLP engine every split test shards.
func buildEngine(t *testing.T) store.Engine {
	t.Helper()
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	return store.Engine{Graph: g, Index: ix}
}

// TestSketchRoundTrip: encode/decode is lossless over a real index, and
// membership answers match the index term-for-term.
func TestSketchRoundTrip(t *testing.T) {
	eng := buildEngine(t)
	sk, err := BuildSketch(eng.Index)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSketch(sk.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sk, back) {
		t.Fatal("sketch does not round-trip through Encode/Decode")
	}
	err = eng.Index.ForEachTermSorted(func(tok string, ns []graph.NodeID) {
		if !back.Has(tok) {
			t.Errorf("indexed term %q missing from the sketch", tok)
		}
		if df := back.DF(tok); df < uint64(len(ns)) {
			t.Errorf("term %q df %d below its posting count %d", tok, df, len(ns))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.Has("no-such-term-in-the-corpus") {
		t.Error("sketch claims a term the index never saw")
	}
}

// TestSketchDecodeRejectsCorruption: truncated or trailing bytes must
// error, never yield a silently-wrong router.
func TestSketchDecodeRejectsCorruption(t *testing.T) {
	eng := buildEngine(t)
	sk, err := BuildSketch(eng.Index)
	if err != nil {
		t.Fatal(err)
	}
	enc := sk.Encode()
	if _, err := DecodeSketch(enc[:len(enc)/2]); err == nil {
		t.Error("truncated sketch decoded without error")
	}
	if _, err := DecodeSketch(append(append([]byte{}, enc...), 0xff)); err == nil {
		t.Error("sketch with trailing bytes decoded without error")
	}
	if _, err := DecodeSketch([]byte{99}); err == nil {
		t.Error("unknown sketch version decoded without error")
	}
}

// TestAssignContiguousCover: the (table, row-range) cut assigns every
// node exactly once, in nondecreasing partition order within each table.
func TestAssignContiguousCover(t *testing.T) {
	eng := buildEngine(t)
	for _, parts := range []int{1, 2, 3, 7} {
		assign := Assign(eng.Graph, parts)
		if len(assign) != eng.Graph.NumNodes() {
			t.Fatalf("parts=%d: assignment covers %d nodes, want %d", parts, len(assign), eng.Graph.NumNodes())
		}
		for tid := int32(0); tid < int32(eng.Graph.NumTables()); tid++ {
			lo, hi := eng.Graph.NodesOfTable(tid)
			prev := 0
			for n := lo; n < hi; n++ {
				p := assign[n]
				if p < 0 || p >= parts {
					t.Fatalf("parts=%d: node %d assigned to %d", parts, n, p)
				}
				if p < prev {
					t.Fatalf("parts=%d: table %d rows not contiguous: partition %d after %d", parts, tid, p, prev)
				}
				prev = p
			}
		}
	}
}

// TestSplitEngineDisjointCover: partitions hold disjoint node sets that
// union to the source, every partition carries all tables, the global
// normalizers, and a sketch.
func TestSplitEngineDisjointCover(t *testing.T) {
	eng := buildEngine(t)
	const parts = 3
	engines, err := SplitEngine(eng, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(engines) != parts {
		t.Fatalf("got %d engines, want %d", len(engines), parts)
	}
	seen := make(map[string]int) // "table/rid" -> partition
	totalNodes := 0
	for p, pe := range engines {
		if pe.Graph.NumTables() != eng.Graph.NumTables() {
			t.Fatalf("partition %d has %d tables, want %d", p, pe.Graph.NumTables(), eng.Graph.NumTables())
		}
		if pe.Graph.MinEdgeWeight() != eng.Graph.MinEdgeWeight() ||
			pe.Graph.MaxNodeWeight() != eng.Graph.MaxNodeWeight() {
			t.Fatalf("partition %d lost the global normalizers", p)
		}
		if len(pe.TermStats) == 0 {
			t.Fatalf("partition %d has no term-statistics sketch", p)
		}
		totalNodes += pe.Graph.NumNodes()
		for n := graph.NodeID(0); int(n) < pe.Graph.NumNodes(); n++ {
			key := fmt.Sprintf("%s/%d", pe.Graph.TableNameOf(n), pe.Graph.RIDOf(n))
			if prev, dup := seen[key]; dup {
				t.Fatalf("node %s in partitions %d and %d", key, prev, p)
			}
			seen[key] = p
		}
	}
	if totalNodes != eng.Graph.NumNodes() {
		t.Fatalf("partitions hold %d nodes, source has %d", totalNodes, eng.Graph.NumNodes())
	}
}

// TestBrokerNeverPrunesMatchingPartition is the routing-safety property
// over randomized splits: shard the real engine into a random partition
// count, then for every indexed term, every partition holding a posting
// (or a metadata match) for that term must be routed — pruning may only
// drop partitions that provably cannot match.
func TestBrokerNeverPrunesMatchingPartition(t *testing.T) {
	eng := buildEngine(t)
	rng := rand.New(rand.NewSource(2))
	terms := make([]string, 0, 1024)
	err := eng.Index.ForEachTermSorted(func(tok string, ns []graph.NodeID) {
		terms = append(terms, tok)
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		parts := 2 + rng.Intn(5)
		engines, err := SplitEngine(eng, parts)
		if err != nil {
			t.Fatal(err)
		}
		sketches := make([]*Sketch, parts)
		for p, pe := range engines {
			if sketches[p], err = DecodeSketch(pe.TermStats); err != nil {
				t.Fatal(err)
			}
		}
		b := NewBroker(sketches)
		// has[p][term]: ground truth from the partition indexes.
		has := make([]map[string]bool, parts)
		for p, pe := range engines {
			has[p] = make(map[string]bool)
			err := pe.Index.ForEachTermSorted(func(tok string, ns []graph.NodeID) {
				if len(ns) > 0 {
					has[p][tok] = true
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		// Single-term queries: exhaustive over the source vocabulary.
		for _, tok := range terms {
			routed := toSet(b.Route([]string{tok}, false, false))
			for p := 0; p < parts; p++ {
				if has[p][tok] && !routed[p] {
					t.Fatalf("parts=%d: partition %d matches %q but was pruned", parts, p, tok)
				}
			}
		}
		// Random multi-term queries, with and without requireAll.
		for q := 0; q < 200; q++ {
			k := 1 + rng.Intn(3)
			query := make([]string, k)
			for i := range query {
				query[i] = terms[rng.Intn(len(terms))]
			}
			routed := toSet(b.Route(query, false, false))
			routedAll := toSet(b.Route(query, true, false))
			for p := 0; p < parts; p++ {
				any, all := false, true
				for _, tok := range query {
					if has[p][tok] {
						any = true
					} else {
						all = false
					}
				}
				if any && !routed[p] {
					t.Fatalf("parts=%d: partition %d matches %v but was pruned", parts, p, query)
				}
				if all && !routedAll[p] {
					t.Fatalf("parts=%d: partition %d matches all of %v but was pruned under requireAll", parts, p, query)
				}
			}
		}
		// scatterAll must defeat pruning entirely.
		if got := b.Route([]string{"zz-not-a-term"}, false, true); len(got) != parts {
			t.Fatalf("scatterAll routed %d of %d partitions", len(got), parts)
		}
	}
}

func toSet(ps []int) map[int]bool {
	m := make(map[int]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}

// TestMergeAnswersDeterministic: the multi-list merge is invariant under
// the order partitions happen to report in, and a single non-empty list
// passes through verbatim (the 1-partition golden-parity path).
func TestMergeAnswersDeterministic(t *testing.T) {
	tids := map[string]int32{"author": 0, "paper": 1}
	mk := func(score float64, table string, rid int64) Answer {
		return Answer{Score: score, Root: Ref{Table: table, RID: rid}}
	}
	a := []Answer{mk(0.9, "paper", 3), mk(0.5, "author", 1)}
	b := []Answer{mk(0.9, "author", 2), mk(0.7, "paper", 1)}
	c := []Answer{mk(0.5, "author", 9)}

	want := MergeAnswers(tids, [][]Answer{a, b, c}, 4)
	perms := [][][]Answer{{b, c, a}, {c, a, b}, {b, a, c}}
	for i, lists := range perms {
		if got := MergeAnswers(tids, lists, 4); !reflect.DeepEqual(got, want) {
			t.Fatalf("permutation %d merged differently:\n%v\nwant\n%v", i, got, want)
		}
	}
	// Ties broke by canonical (table, rid) key, scores descending overall.
	if !sort.SliceIsSorted(want, func(i, j int) bool {
		return want[i].Score > want[j].Score
	}) && len(want) > 1 {
		t.Fatalf("merge is not score-sorted: %v", want)
	}
	if want[0].Root != (Ref{Table: "author", RID: 2}) {
		t.Fatalf("tie at 0.9 broke to %v, want author/2 (lower table id first)", want[0].Root)
	}
	for i := range want {
		if want[i].Rank != i+1 {
			t.Fatalf("rank %d at position %d", want[i].Rank, i)
		}
	}

	// Single contributor: emission order preserved verbatim, even when it
	// disagrees with the canonical multi-list order.
	odd := []Answer{mk(0.2, "paper", 1), mk(0.8, "author", 1)}
	got := MergeAnswers(tids, [][]Answer{nil, odd, nil}, 0)
	if got[0].Root != odd[0].Root || got[1].Root != odd[1].Root {
		t.Fatalf("single-list merge reordered: %v", got)
	}
}

// TestSplitStoreAndRemoteParity covers the full distribution stack: a
// store split on disk, one partition served over HTTP, and the remote
// adapter answering byte-identically to the in-process partition.
func TestSplitStoreAndRemoteParity(t *testing.T) {
	eng := buildEngine(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "src.banks")
	if err := store.WriteFile(src, eng); err != nil {
		t.Fatal(err)
	}
	paths := PartitionPaths(filepath.Join(dir, "part.banks"), 2)
	if err := SplitStore(src, paths); err != nil {
		t.Fatal(err)
	}

	local, err := OpenLocal("p0", paths[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	srv := httptest.NewServer(Handler(local))
	defer srv.Close()
	remote := NewRemote("p0-remote", srv.URL, srv.Client())

	ctx := context.Background()
	lm, err := local.Meta(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := remote.Meta(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rm.Name = lm.Name // the adapters name themselves differently
	if !reflect.DeepEqual(lm, rm) {
		t.Fatalf("remote meta %+v, want local %+v", rm, lm)
	}

	req := RequestFromOptions([]string{"soumen", "sunita"}, false, false, core.DefaultOptions())
	lr, err := local.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := remote.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// BytesFaulted depends on which run touched the store's segments
	// first — both legs hit the same open store, so the second faults
	// nothing. Everything else must agree exactly.
	lr.Stats.BytesFaulted, rr.Stats.BytesFaulted = 0, 0
	if !reflect.DeepEqual(lr, rr) {
		t.Fatalf("remote result differs from local:\n%+v\nwant\n%+v", rr, lr)
	}
}

// TestCoordinatorRoutingStats: the coordinator counts routed and pruned
// legs, stamps the routing decision into the merged stats, and reports
// the partition-local bound exactly when more than one partition exists.
func TestCoordinatorRoutingStats(t *testing.T) {
	eng := buildEngine(t)
	engines, err := SplitEngine(eng, 3)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]Partition, len(engines))
	for i, pe := range engines {
		parts[i] = NewLocalEngine(fmt.Sprintf("p%d", i), pe.Graph, pe.Index, pe.TermStats)
	}
	coord, err := NewCoordinator(context.Background(), parts)
	if err != nil {
		t.Fatal(err)
	}
	req := RequestFromOptions([]string{"soumen"}, false, false, core.DefaultOptions())
	res, err := coord.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.PartitionsTotal != 3 {
		t.Errorf("PartitionsTotal %d, want 3", st.PartitionsTotal)
	}
	if st.PartitionsRouted+st.PartitionsPruned != st.PartitionsTotal {
		t.Errorf("routed %d + pruned %d != total %d", st.PartitionsRouted, st.PartitionsPruned, st.PartitionsTotal)
	}
	if st.PartitionsRouted < 1 {
		t.Error("no partition routed for an indexed term")
	}
	if !st.PartitionLocalBound {
		t.Error("multi-partition query did not report the partition-local bound")
	}
	r := coord.Routing()
	if r.Queries != 1 || r.PartitionsRouted != int64(st.PartitionsRouted) || r.PartitionsPruned != int64(st.PartitionsPruned) {
		t.Errorf("cumulative routing %+v disagrees with per-query stats %+v", r, st)
	}
}
