package cluster

// The routing broker (the ZBroker idea): per-partition term statistics
// decide which partitions a query scatters to. Pruning is conservative
// by construction — sketch membership is exact over indexed tokens, so a
// partition is pruned only when it provably cannot match (with
// RequireAllTerms additionally: cannot match every term, in which case
// it would contribute no answers anyway). Prefix and qualified queries
// bypass pruning entirely: their match sets are not token-exact.

import "strings"

// Broker routes queries to partitions by their term-statistics sketches.
type Broker struct {
	sketches []*Sketch // by partition; nil = always route
}

// NewBroker builds a broker over per-partition sketches (nil entries
// mean "no statistics, always route that partition").
func NewBroker(sketches []*Sketch) *Broker {
	return &Broker{sketches: sketches}
}

// Partitions returns the partition count.
func (b *Broker) Partitions() int { return len(b.sketches) }

// Route returns the indexes of partitions the query must scatter to.
// scatterAll disables pruning (prefix/qualified queries, or terms the
// sketches cannot decide); requireAll prunes partitions missing any term
// (sound because such a partition returns no answers under the
// all-terms-required contract).
func (b *Broker) Route(terms []string, requireAll, scatterAll bool) []int {
	routed := make([]int, 0, len(b.sketches))
	for p, sk := range b.sketches {
		if scatterAll || sk == nil || b.matches(sk, terms, requireAll) {
			routed = append(routed, p)
		}
	}
	return routed
}

func (b *Broker) matches(sk *Sketch, terms []string, requireAll bool) bool {
	matched := 0
	total := 0
	for _, t := range terms {
		t = strings.TrimSpace(strings.ToLower(t))
		if t == "" {
			continue
		}
		total++
		if sk.Has(t) {
			matched++
		} else if requireAll {
			return false
		}
	}
	if total == 0 {
		return true // nothing to decide on; never prune blind
	}
	return matched > 0
}
