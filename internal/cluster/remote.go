package cluster

// The HTTP/JSON partition adapter: Handler exposes any Partition over
// two endpoints (GET /cluster/meta, POST /cluster/query) and Remote
// implements Partition over those endpoints, so partitions can live in
// separate processes — same wire vocabulary, same merge semantics.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// maxWireBody bounds request/response bodies trusted from the network.
const maxWireBody = 64 << 20

// Handler serves a partition over HTTP: GET /cluster/meta returns the
// partition's Meta, POST /cluster/query runs one scatter-gather leg.
func Handler(p Partition) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/meta", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		m, err := p.Meta(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, m)
	})
	mux.HandleFunc("/cluster/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req Request
		body, err := io.ReadAll(io.LimitReader(r.Body, maxWireBody))
		if err == nil {
			err = json.Unmarshal(body, &req)
		}
		if err != nil {
			http.Error(w, fmt.Sprintf("bad query request: %v", err), http.StatusBadRequest)
			return
		}
		res, err := p.Query(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, res)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Remote is a Partition served by another process through Handler.
type Remote struct {
	name string
	base string
	hc   *http.Client
}

// NewRemote returns a partition client for the Handler at base (e.g.
// "http://host:port"). hc nil uses a client with a 30s timeout.
func NewRemote(name, base string, hc *http.Client) *Remote {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Remote{name: name, base: strings.TrimRight(base, "/"), hc: hc}
}

// Name implements Partition.
func (r *Remote) Name() string { return r.name }

// Meta implements Partition.
func (r *Remote) Meta(ctx context.Context) (Meta, error) {
	var m Meta
	err := r.do(ctx, http.MethodGet, "/cluster/meta", nil, &m)
	return m, err
}

// Query implements Partition.
func (r *Remote) Query(ctx context.Context, req Request) (*Result, error) {
	var res Result
	if err := r.do(ctx, http.MethodPost, "/cluster/query", &req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Close implements Partition (the remote process owns the store).
func (r *Remote) Close() error { return nil }

func (r *Remote) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("cluster: partition %s: encoding request: %w", r.name, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.base+path, body)
	if err != nil {
		return fmt.Errorf("cluster: partition %s: %w", r.name, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: partition %s: %w", r.name, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBody))
	if err != nil {
		return fmt.Errorf("cluster: partition %s: reading response: %w", r.name, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		if len(msg) > 512 {
			msg = msg[:512]
		}
		return fmt.Errorf("cluster: partition %s: %s: %s", r.name, resp.Status, msg)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("cluster: partition %s: decoding response: %w", r.name, err)
	}
	return nil
}
