package sqldb

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersAndWriter exercises the RWMutex contract: many
// readers scanning and probing indexes while a writer inserts. Run with
// -race to validate the secondary-index locking.
func TestConcurrentReadersAndWriter(t *testing.T) {
	db := NewDatabase()
	if _, err := db.CreateTable(&TableSchema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: TypeInt, NotNull: true},
			{Name: "grp", Type: TypeInt},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Insert("t", []Value{Int(int64(i)), Int(int64(i % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer keeps inserting.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 100; i < 400; i++ {
			if _, err := db.Insert("t", []Value{Int(int64(i)), Int(int64(i % 7))}); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
		close(stop)
	}()
	// Readers scan and probe concurrently, resolving the table handle
	// *inside* the data read lock — the pattern the graph and index
	// builders use. This deadlocked when Table() took the data lock
	// (RWMutex read locks are not reentrant behind a queued writer);
	// Table() now uses the separate catalog lock, making this safe.
	tbl := db.Table("t")
	grpCol := tbl.ColumnIndex("grp")
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				db.RLock()
				// Catalog access under the data read lock must not
				// deadlock even with the writer queued (regression for
				// the nested-RLock bug).
				inner := db.Table("t")
				_ = db.TableNames()
				n := 0
				inner.Scan(func(rid RID, row []Value) bool {
					n++
					return true
				})
				_ = inner.LookupEq(grpCol, Int(int64(r%7)))
				db.RUnlock()
				if n < 100 {
					t.Errorf("reader saw %d rows", n)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if got := db.Table("t").Len(); got != 400 {
		t.Errorf("final rows = %d", got)
	}
}

// TestConcurrentInsertDistinctKeys checks writer serialization: parallel
// inserts with distinct keys all land.
func TestConcurrentInsertDistinctKeys(t *testing.T) {
	db := NewDatabase()
	db.CreateTable(&TableSchema{
		Name:       "t",
		Columns:    []Column{{Name: "id", Type: TypeText, NotNull: true}},
		PrimaryKey: []string{"id"},
	})
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if _, err := db.Insert("t", []Value{Text(key)}); err != nil {
					t.Errorf("insert %s: %v", key, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := db.Table("t").Len(); got != workers*per {
		t.Errorf("rows = %d, want %d", got, workers*per)
	}
}
