package sqldb

import (
	"fmt"
	"strings"
)

// Column describes one column of a table.
type Column struct {
	Name    string
	Type    Type
	NotNull bool
}

// ForeignKey declares that Column of the owning table references RefColumn
// (which must be the primary key) of RefTable.
//
// Weight is the similarity s(R1, R2) from Section 2.2 of the paper: the
// forward edge weight from a referencing tuple to the referenced tuple.
// Smaller values mean stronger proximity; zero means "use the default" (1).
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
	Weight    float64
}

// TableSchema is the static description of a table.
type TableSchema struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string // column names; may be empty (rowid-only table)
	ForeignKeys []ForeignKey
}

// Clone returns a deep copy of the schema.
func (s *TableSchema) Clone() *TableSchema {
	c := &TableSchema{Name: s.Name}
	c.Columns = append([]Column(nil), s.Columns...)
	c.PrimaryKey = append([]string(nil), s.PrimaryKey...)
	c.ForeignKeys = append([]ForeignKey(nil), s.ForeignKeys...)
	return c
}

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1 if absent.
func (s *TableSchema) ColumnIndex(name string) int {
	for i := range s.Columns {
		if strings.EqualFold(s.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column, or nil.
func (s *TableSchema) Column(name string) *Column {
	if i := s.ColumnIndex(name); i >= 0 {
		return &s.Columns[i]
	}
	return nil
}

// validate checks internal consistency (duplicate columns, PK/FK columns
// existing, FK weights non-negative). Cross-table FK validation happens at
// CreateTable time against the catalog.
func (s *TableSchema) validate() error {
	if s.Name == "" {
		return fmt.Errorf("sqldb: table must have a name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("sqldb: table %s has no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if c.Name == "" {
			return fmt.Errorf("sqldb: table %s has an unnamed column", s.Name)
		}
		if seen[lc] {
			return fmt.Errorf("sqldb: table %s: duplicate column %s", s.Name, c.Name)
		}
		if c.Type == TypeNull {
			return fmt.Errorf("sqldb: table %s column %s: NULL is not a column type", s.Name, c.Name)
		}
		seen[lc] = true
	}
	pkSeen := make(map[string]bool, len(s.PrimaryKey))
	for _, pk := range s.PrimaryKey {
		if s.ColumnIndex(pk) < 0 {
			return fmt.Errorf("sqldb: table %s: primary key column %s does not exist", s.Name, pk)
		}
		if pkSeen[strings.ToLower(pk)] {
			return fmt.Errorf("sqldb: table %s: duplicate primary key column %s", s.Name, pk)
		}
		pkSeen[strings.ToLower(pk)] = true
	}
	for _, fk := range s.ForeignKeys {
		if s.ColumnIndex(fk.Column) < 0 {
			return fmt.Errorf("sqldb: table %s: foreign key column %s does not exist", s.Name, fk.Column)
		}
		if fk.RefTable == "" {
			return fmt.Errorf("sqldb: table %s: foreign key on %s has no referenced table", s.Name, fk.Column)
		}
		if fk.Weight < 0 {
			return fmt.Errorf("sqldb: table %s: foreign key on %s has negative weight", s.Name, fk.Column)
		}
	}
	return nil
}

// String renders the schema as a CREATE TABLE statement.
func (s *TableSchema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", s.Name)
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	if len(s.PrimaryKey) > 0 {
		fmt.Fprintf(&b, ", PRIMARY KEY (%s)", strings.Join(s.PrimaryKey, ", "))
	}
	for _, fk := range s.ForeignKeys {
		fmt.Fprintf(&b, ", FOREIGN KEY (%s) REFERENCES %s (%s)", fk.Column, fk.RefTable, fk.RefColumn)
		if fk.Weight != 0 && fk.Weight != 1 {
			fmt.Fprintf(&b, " WEIGHT %g", fk.Weight)
		}
	}
	b.WriteString(")")
	return b.String()
}
