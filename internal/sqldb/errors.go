package sqldb

import "errors"

// Sentinel errors returned by the engine. Wrap-aware callers should test
// with errors.Is.
var (
	ErrNoTable       = errors.New("sqldb: no such table")
	ErrDuplicateName = errors.New("sqldb: table already exists")
	ErrNoColumn      = errors.New("sqldb: no such column")
	ErrNoRow         = errors.New("sqldb: no such row")
	ErrDuplicateKey  = errors.New("sqldb: duplicate primary key")
	ErrNotNull       = errors.New("sqldb: NOT NULL constraint violated")
	ErrFKViolation   = errors.New("sqldb: foreign key constraint violated")
	ErrFKRestrict    = errors.New("sqldb: row is referenced by other rows")
	ErrNoPrimaryKey  = errors.New("sqldb: referenced table has no usable primary key")
)
