package sqldb

import (
	"bytes"
	"strings"
	"testing"
)

func TestDumpSQLDependencyOrder(t *testing.T) {
	db := newBibDB(t) // Writes/Cites reference Paper/Author
	db.Insert("Author", []Value{Text("a1"), Text("X")})
	db.Insert("Paper", []Value{Text("p1"), Text("It's \"quoted\"")})
	db.Insert("Writes", []Value{Text("a1"), Text("p1")})
	var buf bytes.Buffer
	if err := db.DumpSQL(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// Referenced tables must be created before referencing ones.
	for _, pair := range [][2]string{
		{"CREATE TABLE Paper", "CREATE TABLE Writes"},
		{"CREATE TABLE Author", "CREATE TABLE Writes"},
		{"CREATE TABLE Paper", "CREATE TABLE Cites"},
	} {
		if strings.Index(s, pair[0]) > strings.Index(s, pair[1]) {
			t.Errorf("%q should precede %q", pair[0], pair[1])
		}
	}
	// String escaping survives.
	if !strings.Contains(s, "'It''s \"quoted\"'") {
		t.Errorf("escaped literal missing from dump:\n%s", s)
	}
	// Non-default FK weights survive the round trip (Cites has WEIGHT 2);
	// losing them would silently change graph edge weights after a
	// dump/restore.
	if !strings.Contains(s, "REFERENCES Paper (PaperId) WEIGHT 2") {
		t.Errorf("FK WEIGHT clause missing from dump:\n%s", s)
	}
}

// TestDumpSQLRoundTrip replays the dump through the parser/engine and
// compares contents.
func TestDumpSQLRoundTrip(t *testing.T) {
	db := newBibDB(t)
	db.Insert("Author", []Value{Text("a1"), Text("Jim Gray")})
	db.Insert("Author", []Value{Text("a2"), Null()})
	db.Insert("Paper", []Value{Text("p1"), Text("Transactions")})
	db.Insert("Writes", []Value{Text("a1"), Text("p1")})
	db.Insert("Cites", []Value{Text("p1"), Text("p1")})

	var buf bytes.Buffer
	if err := db.DumpSQL(&buf); err != nil {
		t.Fatal(err)
	}

	// Replaying needs the executor; to keep this package dependency-free
	// the full round trip lives in sqlexec's tests. Here: structural
	// checks only.
	dump := buf.String()
	if got := strings.Count(dump, "CREATE TABLE"); got != 4 {
		t.Errorf("CREATE TABLE count = %d", got)
	}
	if !strings.Contains(dump, "NULL") {
		t.Error("NULL value missing")
	}
}

func TestDumpSQLManyRowsBatches(t *testing.T) {
	db := NewDatabase()
	db.CreateTable(&TableSchema{
		Name:    "t",
		Columns: []Column{{Name: "a", Type: TypeInt}},
	})
	for i := 0; i < 150; i++ {
		db.Insert("t", []Value{Int(int64(i))})
	}
	var buf bytes.Buffer
	if err := db.DumpSQL(&buf); err != nil {
		t.Fatal(err)
	}
	// 150 rows at batch size 64 = 3 INSERT statements.
	if got := strings.Count(buf.String(), "INSERT INTO t"); got != 3 {
		t.Errorf("INSERT statements = %d, want 3", got)
	}
}
