package sqldb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{Text("hello"), "hello"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValueSQLLiteralEscapes(t *testing.T) {
	v := Text("O'Brien")
	if got, want := v.SQLLiteral(), "'O''Brien'"; got != want {
		t.Errorf("SQLLiteral = %q, want %q", got, want)
	}
	if got, want := Int(3).SQLLiteral(), "3"; got != want {
		t.Errorf("SQLLiteral = %q, want %q", got, want)
	}
}

func TestValueIsNull(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if Int(0).IsNull() {
		t.Error("Int(0).IsNull() = true")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value should be NULL")
	}
}

func TestValueAsBool(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null(), false},
		{Int(0), false},
		{Int(1), true},
		{Float(0), false},
		{Float(0.5), true},
		{Text(""), false},
		{Text("x"), true},
		{Bool(true), true},
		{Bool(false), false},
	}
	for _, c := range cases {
		if got := c.v.AsBool(); got != c.want {
			t.Errorf("AsBool(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestValueConvert(t *testing.T) {
	cases := []struct {
		in     Value
		to     Type
		want   Value
		hasErr bool
	}{
		{Int(3), TypeFloat, Float(3), false},
		{Float(3), TypeInt, Int(3), false},
		{Float(3.5), TypeInt, Null(), true},
		{Text("12"), TypeInt, Int(12), false},
		{Text("1.5"), TypeFloat, Float(1.5), false},
		{Text("abc"), TypeInt, Null(), true},
		{Int(7), TypeText, Text("7"), false},
		{Null(), TypeInt, Null(), false},
		{Bool(true), TypeInt, Int(1), false},
		{Int(0), TypeBool, Bool(false), false},
	}
	for _, c := range cases {
		got, err := c.in.Convert(c.to)
		if (err != nil) != c.hasErr {
			t.Errorf("Convert(%v, %v) err = %v, hasErr want %v", c.in, c.to, err, c.hasErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("Convert(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	lt := func(a, b Value) {
		t.Helper()
		c, err := a.Compare(b)
		if err != nil || c != -1 {
			t.Errorf("Compare(%v, %v) = %d, %v; want -1", a, b, c, err)
		}
		c, err = b.Compare(a)
		if err != nil || c != 1 {
			t.Errorf("Compare(%v, %v) = %d, %v; want 1", b, a, c, err)
		}
	}
	lt(Int(1), Int(2))
	lt(Float(1.5), Int(2))
	lt(Int(1), Float(1.5))
	lt(Text("a"), Text("b"))
	lt(Null(), Int(0))
	lt(Null(), Text(""))
	lt(Bool(false), Bool(true))

	if _, err := Text("a").Compare(Int(1)); err == nil {
		t.Error("comparing TEXT to INT should error")
	}
	if c, err := Int(5).Compare(Float(5)); err != nil || c != 0 {
		t.Errorf("Int(5) vs Float(5): %d, %v; want 0", c, err)
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL should not equal NULL")
	}
	if Null().Equal(Int(0)) || Int(0).Equal(Null()) {
		t.Error("NULL should not equal 0")
	}
	if !Int(3).Equal(Float(3)) {
		t.Error("3 should equal 3.0")
	}
}

func TestEncodeKeyDistinctness(t *testing.T) {
	vals := []Value{
		Null(), Int(0), Int(1), Int(-1), Float(0.5), Text(""), Text("0"),
		Text("i0"), Bool(true), Bool(false), Text("a\x00b"), Text("ab"),
	}
	seen := make(map[string]Value)
	for _, v := range vals {
		k := v.KeyString()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision: %v and %v both encode to %q", prev, v, k)
		}
		seen[k] = v
	}
	// Numeric equality must collapse across types for index lookups.
	if Int(5).KeyString() != Float(5).KeyString() {
		t.Error("Int(5) and Float(5) should share a key")
	}
}

func TestEncodeKeyInjectiveProperty(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return true
		}
		return Text(a).KeyString() != Text(b).KeyString()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b int64) bool {
		if a == b {
			return true
		}
		return Int(a).KeyString() != Int(b).KeyString()
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		c1, err1 := x.Compare(y)
		c2, err2 := y.Compare(x)
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeRowKeyComposite(t *testing.T) {
	a := EncodeRowKey([]Value{Text("x"), Int(1)})
	b := EncodeRowKey([]Value{Text("x"), Int(2)})
	c := EncodeRowKey([]Value{Text("x1"), Int(0)})
	if a == b || a == c || b == c {
		t.Errorf("composite keys should be distinct: %q %q %q", a, b, c)
	}
}

func TestParseType(t *testing.T) {
	for name, want := range map[string]Type{
		"INT": TypeInt, "integer": TypeInt, "VARCHAR": TypeText,
		"text": TypeText, "FLOAT": TypeFloat, "double": TypeFloat,
		"BOOLEAN": TypeBool,
	} {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("ParseType(BLOB) should fail")
	}
}

func TestFloatKeyNonInteger(t *testing.T) {
	if Float(math.Pi).KeyString() == Float(math.E).KeyString() {
		t.Error("distinct floats must encode distinctly")
	}
}
