package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Database is a catalog of tables with constraint enforcement across them.
// mu serializes data writers against readers; catMu guards only the
// catalog map so that Table and TableNames can be called while holding the
// data read lock (Go RWMutex read locks are not reentrant — a nested RLock
// behind a queued writer deadlocks, and the graph/index builders and the
// executor all resolve tables under RLock).
type Database struct {
	mu     sync.RWMutex
	catMu  sync.RWMutex
	tables map[string]*Table // lower(name) -> table
	order  []string          // creation order (original casing)
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// RLock / RUnlock expose the read lock for callers (like the graph builder)
// that perform many reads and want a stable snapshot.
func (db *Database) RLock()   { db.mu.RLock() }
func (db *Database) RUnlock() { db.mu.RUnlock() }

// CreateTable validates the schema (including that FK targets exist and are
// single-column primary keys of compatible type) and registers the table.
// Self-referencing foreign keys are allowed.
func (db *Database) CreateTable(schema *TableSchema) (*Table, error) {
	if err := schema.validate(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(schema.Name)
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateName, schema.Name)
	}
	for i := range schema.ForeignKeys {
		fk := &schema.ForeignKeys[i]
		var ref *TableSchema
		if strings.EqualFold(fk.RefTable, schema.Name) {
			ref = schema
		} else if rt, ok := db.tables[strings.ToLower(fk.RefTable)]; ok {
			ref = rt.schema
		} else {
			return nil, fmt.Errorf("%w: %s (referenced by %s.%s)", ErrNoTable, fk.RefTable, schema.Name, fk.Column)
		}
		if fk.RefColumn == "" {
			if len(ref.PrimaryKey) == 1 {
				fk.RefColumn = ref.PrimaryKey[0]
			} else {
				return nil, fmt.Errorf("%w: %s", ErrNoPrimaryKey, ref.Name)
			}
		}
		if len(ref.PrimaryKey) != 1 || !strings.EqualFold(ref.PrimaryKey[0], fk.RefColumn) {
			return nil, fmt.Errorf("%w: %s.%s must reference the single-column primary key of %s",
				ErrNoPrimaryKey, schema.Name, fk.Column, ref.Name)
		}
		if fk.Weight == 0 {
			fk.Weight = 1
		}
	}
	t := newTable(schema.Clone())
	db.catMu.Lock()
	db.tables[key] = t
	db.order = append(db.order, schema.Name)
	db.catMu.Unlock()
	return t, nil
}

// DropTable removes a table. It fails if another table references it.
func (db *Database) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	t, ok := db.tables[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	for _, other := range db.tables {
		if other == t {
			continue
		}
		for _, fk := range other.schema.ForeignKeys {
			if strings.EqualFold(fk.RefTable, name) {
				return fmt.Errorf("%w: %s is referenced by %s.%s", ErrFKRestrict, name, other.Name(), fk.Column)
			}
		}
	}
	db.catMu.Lock()
	delete(db.tables, key)
	for i, n := range db.order {
		if strings.EqualFold(n, name) {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	db.catMu.Unlock()
	return nil
}

// Table returns the named table (case-insensitive), or nil. It takes only
// the catalog lock, so it is safe to call while holding RLock.
func (db *Database) Table(name string) *Table {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames returns the table names in creation order. Like Table, it is
// safe to call while holding RLock.
func (db *Database) TableNames() []string {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	return append([]string(nil), db.order...)
}

// Insert adds a row after enforcing NOT NULL, primary-key uniqueness and
// foreign-key existence. vals must match the column order of the schema.
func (db *Database) Insert(table string, vals []Value) (RID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.insertLocked(table, vals)
}

func (db *Database) insertLocked(table string, vals []Value) (RID, error) {
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return -1, fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	row, err := t.coerceRow(vals)
	if err != nil {
		return -1, err
	}
	if err := db.checkForeignKeys(t, row); err != nil {
		return -1, err
	}
	return t.insert(row)
}

// InsertMap adds a row given as column-name -> value; omitted columns are
// NULL.
func (db *Database) InsertMap(table string, m map[string]Value) (RID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return -1, fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	vals := make([]Value, len(t.schema.Columns))
	for name, v := range m {
		i := t.ColumnIndex(name)
		if i < 0 {
			return -1, fmt.Errorf("%w: %s.%s", ErrNoColumn, table, name)
		}
		vals[i] = v
	}
	return db.insertLocked(table, vals)
}

func (db *Database) checkForeignKeys(t *Table, row []Value) error {
	for _, fk := range t.schema.ForeignKeys {
		ci := t.ColumnIndex(fk.Column)
		v := row[ci]
		if v.IsNull() {
			continue // NULL FK values are permitted (no edge)
		}
		ref := db.tables[strings.ToLower(fk.RefTable)]
		if ref == nil {
			return fmt.Errorf("%w: %s", ErrNoTable, fk.RefTable)
		}
		if ref == t {
			// Self-referencing FK: the row being inserted may reference
			// itself only via an existing key; lookup below covers it.
		}
		cv, err := v.Convert(ref.schema.Columns[ref.pkCols[0]].Type)
		if err != nil {
			return fmt.Errorf("%w: %s.%s -> %s: %v", ErrFKViolation, t.Name(), fk.Column, fk.RefTable, err)
		}
		if ref.LookupPK([]Value{cv}) < 0 {
			return fmt.Errorf("%w: %s.%s = %s has no match in %s.%s",
				ErrFKViolation, t.Name(), fk.Column, v, fk.RefTable, fk.RefColumn)
		}
	}
	return nil
}

// Delete removes the row at rid, failing with ErrFKRestrict when other live
// rows reference it.
func (db *Database) Delete(table string, rid RID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	if !t.Live(rid) {
		return fmt.Errorf("%w: table %s rid %d", ErrNoRow, table, rid)
	}
	if refs := db.referencingLocked(t, rid, 1); len(refs) > 0 {
		return fmt.Errorf("%w: %s rid %d referenced by %s.%s",
			ErrFKRestrict, table, rid, refs[0].Table, refs[0].Column)
	}
	return t.delete(rid)
}

// Update modifies the named columns of the row at rid, enforcing all
// constraints. Updating a primary key that other rows reference fails with
// ErrFKRestrict.
func (db *Database) Update(table string, rid RID, set map[string]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	old := t.Row(rid)
	if old == nil {
		return fmt.Errorf("%w: table %s rid %d", ErrNoRow, table, rid)
	}
	row := append([]Value(nil), old...)
	pkChanged := false
	for name, v := range set {
		i := t.ColumnIndex(name)
		if i < 0 {
			return fmt.Errorf("%w: %s.%s", ErrNoColumn, table, name)
		}
		row[i] = v
		for _, pc := range t.pkCols {
			if pc == i {
				pkChanged = true
			}
		}
	}
	if pkChanged {
		if refs := db.referencingLocked(t, rid, 1); len(refs) > 0 {
			return fmt.Errorf("%w: cannot change key of %s rid %d (referenced by %s.%s)",
				ErrFKRestrict, table, rid, refs[0].Table, refs[0].Column)
		}
	}
	if err := db.checkForeignKeys(t, row); err != nil {
		return err
	}
	return t.update(rid, row)
}

// Reference describes one incoming foreign-key reference to a tuple: the
// referencing table, its FK column, and the rids of the referencing rows.
// This powers both delete-restrict checks and the paper's backward browsing
// ("primary key columns can be browsed backwards, to find referencing
// tuples, organized by referencing relations").
type Reference struct {
	Table  string
	Column string
	RIDs   []RID
}

// Referencing returns, grouped by (table, column), all live rows that
// reference the tuple at (table, rid) through a foreign key.
func (db *Database) Referencing(table string, rid RID) []Reference {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok || !t.Live(rid) {
		return nil
	}
	return db.referencingLocked(t, rid, 0)
}

// referencingLocked gathers references; if limit > 0 it stops after that
// many groups (cheap existence checks for restrict enforcement).
func (db *Database) referencingLocked(t *Table, rid RID, limit int) []Reference {
	if len(t.pkCols) != 1 {
		return nil
	}
	pkVal := t.rows[rid][t.pkCols[0]]
	var out []Reference
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		other := db.tables[n]
		for _, fk := range other.schema.ForeignKeys {
			if !strings.EqualFold(fk.RefTable, t.Name()) {
				continue
			}
			ci := other.ColumnIndex(fk.Column)
			cv, err := pkVal.Convert(other.schema.Columns[ci].Type)
			if err != nil {
				continue
			}
			rids := other.LookupEq(ci, cv)
			if len(rids) > 0 {
				out = append(out, Reference{Table: other.Name(), Column: fk.Column, RIDs: append([]RID(nil), rids...)})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// Stats summarizes the database contents.
type Stats struct {
	Tables int
	Rows   int
	FKs    int
}

// Stats returns table/row/foreign-key counts.
func (db *Database) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var s Stats
	s.Tables = len(db.tables)
	for _, t := range db.tables {
		s.Rows += t.Len()
		s.FKs += len(t.schema.ForeignKeys)
	}
	return s
}
