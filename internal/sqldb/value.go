// Package sqldb implements the embedded relational storage engine that BANKS
// runs on. It is the substitute for the IBM Universal Database the paper used
// via JDBC: typed relations with enforced primary- and foreign-key
// constraints, which the graph builder (internal/graph) turns into the BANKS
// data graph.
//
// The engine is deliberately self-contained: tables live in memory, writes
// are serialized per database, and reads may run concurrently. SQL access is
// layered on top by internal/sqlparse and internal/sqlexec; a database/sql
// driver is provided by internal/driver.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the column types supported by the engine.
type Type uint8

// Supported column types.
const (
	TypeNull Type = iota // the type of the NULL literal only; not a column type
	TypeInt
	TypeFloat
	TypeText
	TypeBool
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType maps a SQL type name to a Type. It accepts the common synonyms
// (INT/INTEGER/BIGINT, FLOAT/REAL/DOUBLE, TEXT/VARCHAR/CHAR, BOOL/BOOLEAN).
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TypeInt, nil
	case "FLOAT", "REAL", "DOUBLE":
		return TypeFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING", "CLOB":
		return TypeText, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	}
	return TypeNull, fmt.Errorf("sqldb: unknown type %q", name)
}

// Value is a single typed SQL value. The zero Value is NULL.
//
// Value is a small struct rather than an interface so that rows ([]Value) are
// a single contiguous allocation and comparisons avoid dynamic dispatch; this
// matters when the graph builder scans hundred-thousand-row tables.
type Value struct {
	T Type
	I int64
	F float64
	S string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an INTEGER value.
func Int(v int64) Value { return Value{T: TypeInt, I: v} }

// Float returns a FLOAT value.
func Float(v float64) Value { return Value{T: TypeFloat, F: v} }

// Text returns a TEXT value.
func Text(v string) Value { return Value{T: TypeText, S: v} }

// Bool returns a BOOLEAN value.
func Bool(v bool) Value {
	if v {
		return Value{T: TypeBool, I: 1}
	}
	return Value{T: TypeBool}
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// AsBool reports the truth value; NULL and non-boolean values are false
// unless they coerce naturally (non-zero numbers are true).
func (v Value) AsBool() bool {
	switch v.T {
	case TypeBool, TypeInt:
		return v.I != 0
	case TypeFloat:
		return v.F != 0
	case TypeText:
		return v.S != ""
	}
	return false
}

// AsFloat returns the numeric value as float64 (0 for non-numeric).
func (v Value) AsFloat() float64 {
	switch v.T {
	case TypeInt, TypeBool:
		return float64(v.I)
	case TypeFloat:
		return v.F
	}
	return 0
}

// String renders the value the way the SQL shell and the browser display it.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeText:
		return v.S
	case TypeBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}

// SQLLiteral renders the value as a SQL literal (strings quoted and escaped).
func (v Value) SQLLiteral() string {
	if v.T == TypeText {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.String()
}

// Convert coerces v to type t, returning an error when the conversion is
// lossy or nonsensical. NULL converts to NULL of any type.
func (v Value) Convert(t Type) (Value, error) {
	if v.T == TypeNull || v.T == t {
		return v, nil
	}
	switch t {
	case TypeInt:
		switch v.T {
		case TypeFloat:
			if v.F == float64(int64(v.F)) {
				return Int(int64(v.F)), nil
			}
		case TypeBool:
			return Int(v.I), nil
		case TypeText:
			if i, err := strconv.ParseInt(v.S, 10, 64); err == nil {
				return Int(i), nil
			}
		}
	case TypeFloat:
		switch v.T {
		case TypeInt:
			return Float(float64(v.I)), nil
		case TypeText:
			if f, err := strconv.ParseFloat(v.S, 64); err == nil {
				return Float(f), nil
			}
		}
	case TypeText:
		return Text(v.String()), nil
	case TypeBool:
		switch v.T {
		case TypeInt:
			return Bool(v.I != 0), nil
		}
	}
	return Null(), fmt.Errorf("sqldb: cannot convert %s %q to %s", v.T, v.String(), t)
}

// Compare orders two values: -1, 0, or +1. NULL sorts before everything.
// Numeric types compare numerically across INT/FLOAT/BOOL; TEXT compares
// lexicographically. Comparing TEXT to a numeric type is an error.
func (v Value) Compare(o Value) (int, error) {
	if v.T == TypeNull || o.T == TypeNull {
		switch {
		case v.T == o.T:
			return 0, nil
		case v.T == TypeNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	vNum := v.T == TypeInt || v.T == TypeFloat || v.T == TypeBool
	oNum := o.T == TypeInt || o.T == TypeFloat || o.T == TypeBool
	switch {
	case vNum && oNum:
		if v.T == TypeInt && o.T == TypeInt {
			switch {
			case v.I < o.I:
				return -1, nil
			case v.I > o.I:
				return 1, nil
			}
			return 0, nil
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		}
		return 0, nil
	case v.T == TypeText && o.T == TypeText:
		return strings.Compare(v.S, o.S), nil
	}
	return 0, fmt.Errorf("sqldb: cannot compare %s with %s", v.T, o.T)
}

// Equal reports whether the two values are equal under Compare semantics.
// NULL equals nothing, including NULL (SQL three-valued logic collapses to
// false here; use IsNull to test for NULL explicitly).
func (v Value) Equal(o Value) bool {
	if v.T == TypeNull || o.T == TypeNull {
		return false
	}
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// EncodeKey appends a self-delimiting encoding of v to dst, suitable for use
// as a map key component (via string(dst)). Distinct values encode
// distinctly; numerically equal INT and FLOAT values encode identically so
// that index lookups match across the numeric types.
func (v Value) EncodeKey(dst []byte) []byte {
	switch v.T {
	case TypeNull:
		return append(dst, 'n')
	case TypeInt:
		dst = append(dst, 'i')
		return strconv.AppendInt(dst, v.I, 10)
	case TypeFloat:
		if v.F == float64(int64(v.F)) {
			dst = append(dst, 'i')
			return strconv.AppendInt(dst, int64(v.F), 10)
		}
		dst = append(dst, 'f')
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case TypeText:
		dst = append(dst, 't')
		dst = strconv.AppendInt(dst, int64(len(v.S)), 10)
		dst = append(dst, ':')
		return append(dst, v.S...)
	case TypeBool:
		dst = append(dst, 'b')
		if v.I != 0 {
			return append(dst, '1')
		}
		return append(dst, '0')
	}
	return dst
}

// KeyString returns the EncodeKey form of v as a string.
func (v Value) KeyString() string { return string(v.EncodeKey(nil)) }

// EncodeRowKey encodes a composite key from the given values.
func EncodeRowKey(vals []Value) string {
	var dst []byte
	for _, v := range vals {
		dst = v.EncodeKey(dst)
		dst = append(dst, 0)
	}
	return string(dst)
}
