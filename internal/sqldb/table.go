package sqldb

import (
	"fmt"
	"strings"
	"sync"
)

// RID identifies a row slot within a table. RIDs are dense, start at 0, and
// are never reused; deleted rows leave tombstones. The BANKS graph stores
// only (table, RID) per node, exactly as the paper prescribes.
type RID int64

// Table holds the rows of one relation plus its primary-key index and any
// incrementally-maintained secondary indexes. Tables are not safe for
// concurrent mutation; Database serializes writers.
type Table struct {
	schema *TableSchema
	colIdx map[string]int // lower(name) -> position

	rows [][]Value
	live []bool
	n    int // live row count

	pkCols []int          // positions of primary key columns
	pkIdx  map[string]RID // EncodeRowKey(pk values) -> rid

	// secondary maps column position -> value key -> rids with that value.
	// Built on first use, maintained incrementally afterwards. secMu guards
	// it against concurrent lazy builds by readers holding only the
	// database read lock; writers hold the database write lock and take
	// secMu too so the race detector sees a consistent story.
	secMu     sync.Mutex
	secondary map[int]map[string][]RID
}

func newTable(schema *TableSchema) *Table {
	t := &Table{
		schema:    schema,
		colIdx:    make(map[string]int, len(schema.Columns)),
		secondary: make(map[int]map[string][]RID),
	}
	for i, c := range schema.Columns {
		t.colIdx[strings.ToLower(c.Name)] = i
	}
	for _, pk := range schema.PrimaryKey {
		t.pkCols = append(t.pkCols, t.colIdx[strings.ToLower(pk)])
	}
	if len(t.pkCols) > 0 {
		t.pkIdx = make(map[string]RID)
	}
	return t
}

// Schema returns the table's schema. Callers must not mutate it.
func (t *Table) Schema() *TableSchema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len returns the number of live rows.
func (t *Table) Len() int { return t.n }

// Cap returns the number of row slots including tombstones.
func (t *Table) Cap() int { return len(t.rows) }

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Row returns the row at rid, or nil if the rid is out of range or deleted.
// Callers must not mutate the returned slice.
func (t *Table) Row(rid RID) []Value {
	if rid < 0 || int(rid) >= len(t.rows) || !t.live[rid] {
		return nil
	}
	return t.rows[rid]
}

// Live reports whether rid refers to a live row.
func (t *Table) Live(rid RID) bool {
	return rid >= 0 && int(rid) < len(t.rows) && t.live[rid]
}

// Scan calls fn for every live row in RID order; fn must not mutate the row.
// Returning false from fn stops the scan.
func (t *Table) Scan(fn func(rid RID, row []Value) bool) {
	t.ScanRange(0, RID(len(t.rows)), fn)
}

// ScanRange calls fn for every live row with lo <= rid < hi, in RID order;
// fn must not mutate the row. Returning false from fn stops the scan. The
// range is clamped to the table, so ScanRange(0, Cap()) equals Scan. The
// sharded graph and index builders use disjoint ranges to scan one table
// from several goroutines; like Scan, this is only safe while no writer is
// mutating the table (readers hold the database read lock).
func (t *Table) ScanRange(lo, hi RID, fn func(rid RID, row []Value) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > RID(len(t.rows)) {
		hi = RID(len(t.rows))
	}
	for i := lo; i < hi; i++ {
		if t.live[i] {
			if !fn(i, t.rows[i]) {
				return
			}
		}
	}
}

func (t *Table) pkKey(row []Value) string {
	var dst []byte
	for _, c := range t.pkCols {
		dst = row[c].EncodeKey(dst)
		dst = append(dst, 0)
	}
	return string(dst)
}

// LookupPK returns the rid of the row whose primary key equals vals, or -1.
func (t *Table) LookupPK(vals []Value) RID {
	if t.pkIdx == nil || len(vals) != len(t.pkCols) {
		return -1
	}
	if rid, ok := t.pkIdx[EncodeRowKey(vals)]; ok {
		return rid
	}
	return -1
}

// ensureSecondary builds the secondary index for column position c.
func (t *Table) ensureSecondary(c int) map[string][]RID {
	idx, ok := t.secondary[c]
	if ok {
		return idx
	}
	idx = make(map[string][]RID)
	for i, row := range t.rows {
		if t.live[i] {
			k := row[c].KeyString()
			idx[k] = append(idx[k], RID(i))
		}
	}
	t.secondary[c] = idx
	return idx
}

// LookupEq returns the rids of live rows whose column col equals v, using
// (and building, if needed) a secondary index. The returned slice is shared
// with the index; callers must not mutate it.
func (t *Table) LookupEq(col int, v Value) []RID {
	if col < 0 || col >= len(t.schema.Columns) {
		return nil
	}
	t.secMu.Lock()
	defer t.secMu.Unlock()
	return t.ensureSecondary(col)[v.KeyString()]
}

// coerceRow validates length, coerces each value to the column type, and
// checks NOT NULL constraints. It returns a fresh row slice.
func (t *Table) coerceRow(vals []Value) ([]Value, error) {
	if len(vals) != len(t.schema.Columns) {
		return nil, fmt.Errorf("sqldb: table %s: got %d values, want %d", t.Name(), len(vals), len(t.schema.Columns))
	}
	row := make([]Value, len(vals))
	for i, v := range vals {
		cv, err := v.Convert(t.schema.Columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("sqldb: table %s column %s: %w", t.Name(), t.schema.Columns[i].Name, err)
		}
		if cv.IsNull() && t.schema.Columns[i].NotNull {
			return nil, fmt.Errorf("%w: table %s column %s", ErrNotNull, t.Name(), t.schema.Columns[i].Name)
		}
		row[i] = cv
	}
	return row, nil
}

// insert appends a row without cross-table constraint checks (those are the
// Database's job) but with PK uniqueness and NOT NULL enforcement.
func (t *Table) insert(vals []Value) (RID, error) {
	row, err := t.coerceRow(vals)
	if err != nil {
		return -1, err
	}
	if t.pkIdx != nil {
		k := t.pkKey(row)
		if prev, ok := t.pkIdx[k]; ok {
			return -1, fmt.Errorf("%w: table %s, key %s (rid %d)", ErrDuplicateKey, t.Name(), k, prev)
		}
		t.pkIdx[k] = RID(len(t.rows))
	}
	rid := RID(len(t.rows))
	t.rows = append(t.rows, row)
	t.live = append(t.live, true)
	t.n++
	t.secMu.Lock()
	for c, idx := range t.secondary {
		k := row[c].KeyString()
		idx[k] = append(idx[k], rid)
	}
	t.secMu.Unlock()
	return rid, nil
}

// delete tombstones the row at rid.
func (t *Table) delete(rid RID) error {
	if !t.Live(rid) {
		return fmt.Errorf("%w: table %s rid %d", ErrNoRow, t.Name(), rid)
	}
	row := t.rows[rid]
	if t.pkIdx != nil {
		delete(t.pkIdx, t.pkKey(row))
	}
	t.secMu.Lock()
	for c, idx := range t.secondary {
		k := row[c].KeyString()
		idx[k] = removeRID(idx[k], rid)
		if len(idx[k]) == 0 {
			delete(idx, k)
		}
	}
	t.secMu.Unlock()
	t.live[rid] = false
	t.n--
	return nil
}

// update replaces the row at rid with newVals (already full-width).
func (t *Table) update(rid RID, newVals []Value) error {
	if !t.Live(rid) {
		return fmt.Errorf("%w: table %s rid %d", ErrNoRow, t.Name(), rid)
	}
	row, err := t.coerceRow(newVals)
	if err != nil {
		return err
	}
	old := t.rows[rid]
	if t.pkIdx != nil {
		oldK, newK := t.pkKey(old), t.pkKey(row)
		if oldK != newK {
			if prev, ok := t.pkIdx[newK]; ok {
				return fmt.Errorf("%w: table %s, key %s (rid %d)", ErrDuplicateKey, t.Name(), newK, prev)
			}
			delete(t.pkIdx, oldK)
			t.pkIdx[newK] = rid
		}
	}
	t.secMu.Lock()
	for c, idx := range t.secondary {
		ok, nk := old[c].KeyString(), row[c].KeyString()
		if ok != nk {
			idx[ok] = removeRID(idx[ok], rid)
			if len(idx[ok]) == 0 {
				delete(idx, ok)
			}
			idx[nk] = append(idx[nk], rid)
		}
	}
	t.secMu.Unlock()
	t.rows[rid] = row
	return nil
}

func removeRID(s []RID, rid RID) []RID {
	for i, r := range s {
		if r == rid {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
