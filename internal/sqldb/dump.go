package sqldb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// DumpSQL writes the whole database as a SQL script (CREATE TABLE +
// INSERT statements) that the engine itself can replay. Tables are emitted
// in dependency order (referenced tables first) so the script loads under
// immediate foreign-key checking.
func (db *Database) DumpSQL(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()

	order, err := db.dependencyOrderLocked()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, name := range order {
		t := db.tables[strings.ToLower(name)]
		if _, err := fmt.Fprintf(bw, "%s;\n", t.schema.String()); err != nil {
			return err
		}
		rows := 0
		t.Scan(func(_ RID, row []Value) bool {
			rows++
			return true
		})
		if rows == 0 {
			continue
		}
		const batch = 64
		n := 0
		t.Scan(func(_ RID, row []Value) bool {
			if n%batch == 0 {
				if n > 0 {
					bw.WriteString(";\n")
				}
				fmt.Fprintf(bw, "INSERT INTO %s VALUES\n", t.schema.Name)
			} else {
				bw.WriteString(",\n")
			}
			bw.WriteString("  (")
			for i, v := range row {
				if i > 0 {
					bw.WriteString(", ")
				}
				bw.WriteString(v.SQLLiteral())
			}
			bw.WriteString(")")
			n++
			return true
		})
		bw.WriteString(";\n")
	}
	return bw.Flush()
}

// dependencyOrderLocked topologically sorts tables so every table follows
// the tables it references. Self-references are ignored (they cannot be
// replayed row-by-row anyway unless keys happen to be ordered; the dump is
// best-effort for such schemas). A reference cycle between distinct tables
// is an error.
func (db *Database) dependencyOrderLocked() ([]string, error) {
	names := append([]string(nil), db.order...)
	deps := make(map[string][]string) // table -> tables it references
	for _, n := range names {
		t := db.tables[strings.ToLower(n)]
		for _, fk := range t.schema.ForeignKeys {
			if strings.EqualFold(fk.RefTable, n) {
				continue
			}
			deps[strings.ToLower(n)] = append(deps[strings.ToLower(n)], strings.ToLower(fk.RefTable))
		}
	}
	var out []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(n string) error
	visit = func(n string) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("sqldb: reference cycle involving table %s", n)
		case 2:
			return nil
		}
		state[n] = 1
		ds := append([]string(nil), deps[n]...)
		sort.Strings(ds)
		for _, d := range ds {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[n] = 2
		// Recover original casing.
		for _, orig := range names {
			if strings.ToLower(orig) == n {
				out = append(out, orig)
				break
			}
		}
		return nil
	}
	for _, n := range names {
		if err := visit(strings.ToLower(n)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
