package sqldb

import (
	"errors"
	"fmt"
	"testing"
)

// newBibDB builds the Figure 1 DBLP schema used throughout the tests:
// Paper(PaperId PK, PaperName), Author(AuthorId PK, AuthorName),
// Writes(AuthorId FK, PaperId FK), Cites(Citing FK, Cited FK).
func newBibDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	mustCreate := func(s *TableSchema) {
		t.Helper()
		if _, err := db.CreateTable(s); err != nil {
			t.Fatalf("CreateTable(%s): %v", s.Name, err)
		}
	}
	mustCreate(&TableSchema{
		Name: "Paper",
		Columns: []Column{
			{Name: "PaperId", Type: TypeText, NotNull: true},
			{Name: "PaperName", Type: TypeText},
		},
		PrimaryKey: []string{"PaperId"},
	})
	mustCreate(&TableSchema{
		Name: "Author",
		Columns: []Column{
			{Name: "AuthorId", Type: TypeText, NotNull: true},
			{Name: "AuthorName", Type: TypeText},
		},
		PrimaryKey: []string{"AuthorId"},
	})
	mustCreate(&TableSchema{
		Name: "Writes",
		Columns: []Column{
			{Name: "AuthorId", Type: TypeText},
			{Name: "PaperId", Type: TypeText},
		},
		ForeignKeys: []ForeignKey{
			{Column: "AuthorId", RefTable: "Author"},
			{Column: "PaperId", RefTable: "Paper"},
		},
	})
	mustCreate(&TableSchema{
		Name: "Cites",
		Columns: []Column{
			{Name: "Citing", Type: TypeText},
			{Name: "Cited", Type: TypeText},
		},
		ForeignKeys: []ForeignKey{
			{Column: "Citing", RefTable: "Paper", Weight: 2},
			{Column: "Cited", RefTable: "Paper", Weight: 2},
		},
	})
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDatabase()
	if _, err := db.CreateTable(&TableSchema{Name: "t"}); err == nil {
		t.Error("table with no columns should fail")
	}
	if _, err := db.CreateTable(&TableSchema{
		Name:    "t",
		Columns: []Column{{Name: "a", Type: TypeInt}, {Name: "A", Type: TypeInt}},
	}); err == nil {
		t.Error("duplicate column (case-insensitive) should fail")
	}
	if _, err := db.CreateTable(&TableSchema{
		Name:       "t",
		Columns:    []Column{{Name: "a", Type: TypeInt}},
		PrimaryKey: []string{"b"},
	}); err == nil {
		t.Error("PK on missing column should fail")
	}
	if _, err := db.CreateTable(&TableSchema{
		Name:        "t",
		Columns:     []Column{{Name: "a", Type: TypeInt}},
		ForeignKeys: []ForeignKey{{Column: "a", RefTable: "nosuch"}},
	}); err == nil {
		t.Error("FK to missing table should fail")
	}
}

func TestCreateTableDuplicate(t *testing.T) {
	db := NewDatabase()
	s := &TableSchema{Name: "T", Columns: []Column{{Name: "a", Type: TypeInt}}}
	if _, err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(&TableSchema{Name: "t", Columns: []Column{{Name: "a", Type: TypeInt}}}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("want ErrDuplicateName, got %v", err)
	}
}

func TestInsertAndLookup(t *testing.T) {
	db := newBibDB(t)
	rid, err := db.Insert("Paper", []Value{Text("GrayR93"), Text("Transaction Processing")})
	if err != nil {
		t.Fatal(err)
	}
	p := db.Table("paper") // case-insensitive
	if p == nil {
		t.Fatal("Table(paper) = nil")
	}
	row := p.Row(rid)
	if row == nil || row[1].S != "Transaction Processing" {
		t.Fatalf("Row(%d) = %v", rid, row)
	}
	if got := p.LookupPK([]Value{Text("GrayR93")}); got != rid {
		t.Errorf("LookupPK = %d, want %d", got, rid)
	}
	if got := p.LookupPK([]Value{Text("nope")}); got != -1 {
		t.Errorf("LookupPK(missing) = %d, want -1", got)
	}
}

func TestInsertDuplicatePK(t *testing.T) {
	db := newBibDB(t)
	if _, err := db.Insert("Author", []Value{Text("a1"), Text("X")}); err != nil {
		t.Fatal(err)
	}
	_, err := db.Insert("Author", []Value{Text("a1"), Text("Y")})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("want ErrDuplicateKey, got %v", err)
	}
}

func TestInsertFKEnforcement(t *testing.T) {
	db := newBibDB(t)
	if _, err := db.Insert("Writes", []Value{Text("a1"), Text("p1")}); !errors.Is(err, ErrFKViolation) {
		t.Errorf("dangling FK insert: want ErrFKViolation, got %v", err)
	}
	if _, err := db.Insert("Author", []Value{Text("a1"), Text("X")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("Paper", []Value{Text("p1"), Text("T")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("Writes", []Value{Text("a1"), Text("p1")}); err != nil {
		t.Errorf("valid FK insert failed: %v", err)
	}
	// NULL FK is allowed (no edge).
	if _, err := db.Insert("Writes", []Value{Null(), Text("p1")}); err != nil {
		t.Errorf("NULL FK insert failed: %v", err)
	}
}

func TestInsertNotNull(t *testing.T) {
	db := newBibDB(t)
	if _, err := db.Insert("Paper", []Value{Null(), Text("T")}); !errors.Is(err, ErrNotNull) {
		t.Errorf("want ErrNotNull, got %v", err)
	}
}

func TestDeleteRestrict(t *testing.T) {
	db := newBibDB(t)
	aRID, _ := db.Insert("Author", []Value{Text("a1"), Text("X")})
	pRID, _ := db.Insert("Paper", []Value{Text("p1"), Text("T")})
	wRID, _ := db.Insert("Writes", []Value{Text("a1"), Text("p1")})

	if err := db.Delete("Author", aRID); !errors.Is(err, ErrFKRestrict) {
		t.Errorf("deleting referenced author: want ErrFKRestrict, got %v", err)
	}
	if err := db.Delete("Writes", wRID); err != nil {
		t.Fatalf("deleting writes row: %v", err)
	}
	if err := db.Delete("Author", aRID); err != nil {
		t.Errorf("deleting now-unreferenced author: %v", err)
	}
	if err := db.Delete("Paper", pRID); err != nil {
		t.Errorf("deleting paper: %v", err)
	}
	if db.Table("Author").Len() != 0 || db.Table("Paper").Len() != 0 {
		t.Error("tables should be empty after deletes")
	}
}

func TestDeleteTombstoneNoReuse(t *testing.T) {
	db := newBibDB(t)
	r1, _ := db.Insert("Author", []Value{Text("a1"), Text("X")})
	if err := db.Delete("Author", r1); err != nil {
		t.Fatal(err)
	}
	r2, _ := db.Insert("Author", []Value{Text("a2"), Text("Y")})
	if r2 == r1 {
		t.Error("RIDs must not be reused")
	}
	if db.Table("Author").Row(r1) != nil {
		t.Error("deleted row should be invisible")
	}
}

func TestUpdate(t *testing.T) {
	db := newBibDB(t)
	rid, _ := db.Insert("Author", []Value{Text("a1"), Text("X")})
	if err := db.Update("Author", rid, map[string]Value{"AuthorName": Text("Y")}); err != nil {
		t.Fatal(err)
	}
	if got := db.Table("Author").Row(rid)[1].S; got != "Y" {
		t.Errorf("after update, name = %q", got)
	}
	// Changing a referenced PK must be restricted.
	db.Insert("Paper", []Value{Text("p1"), Text("T")})
	db.Insert("Writes", []Value{Text("a1"), Text("p1")})
	err := db.Update("Author", rid, map[string]Value{"AuthorId": Text("a9")})
	if !errors.Is(err, ErrFKRestrict) {
		t.Errorf("want ErrFKRestrict, got %v", err)
	}
	// Updating an FK column to a dangling value must fail.
	w := db.Table("Writes")
	var wrid RID = -1
	w.Scan(func(r RID, _ []Value) bool { wrid = r; return false })
	if err := db.Update("Writes", wrid, map[string]Value{"PaperId": Text("nope")}); !errors.Is(err, ErrFKViolation) {
		t.Errorf("want ErrFKViolation, got %v", err)
	}
}

func TestUpdatePKReindex(t *testing.T) {
	db := newBibDB(t)
	rid, _ := db.Insert("Author", []Value{Text("a1"), Text("X")})
	if err := db.Update("Author", rid, map[string]Value{"AuthorId": Text("a2")}); err != nil {
		t.Fatal(err)
	}
	a := db.Table("Author")
	if a.LookupPK([]Value{Text("a1")}) != -1 {
		t.Error("old key still indexed")
	}
	if a.LookupPK([]Value{Text("a2")}) != rid {
		t.Error("new key not indexed")
	}
}

func TestReferencing(t *testing.T) {
	db := newBibDB(t)
	db.Insert("Author", []Value{Text("a1"), Text("X")})
	pRID, _ := db.Insert("Paper", []Value{Text("p1"), Text("T")})
	db.Insert("Paper", []Value{Text("p2"), Text("U")})
	db.Insert("Writes", []Value{Text("a1"), Text("p1")})
	db.Insert("Cites", []Value{Text("p2"), Text("p1")})

	refs := db.Referencing("Paper", pRID)
	if len(refs) != 2 {
		t.Fatalf("Referencing = %v, want 2 groups", refs)
	}
	byKey := make(map[string]int)
	for _, r := range refs {
		byKey[r.Table+"."+r.Column] = len(r.RIDs)
	}
	if byKey["Cites.Cited"] != 1 || byKey["Writes.PaperId"] != 1 {
		t.Errorf("Referencing groups = %v", byKey)
	}
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	db := newBibDB(t)
	db.Insert("Author", []Value{Text("a1"), Text("X")})
	db.Insert("Paper", []Value{Text("p1"), Text("T")})
	w := db.Table("Writes")
	ci := w.ColumnIndex("PaperId")

	// Build the index while empty, then verify incremental maintenance.
	if got := w.LookupEq(ci, Text("p1")); len(got) != 0 {
		t.Fatalf("LookupEq on empty = %v", got)
	}
	r1, _ := db.Insert("Writes", []Value{Text("a1"), Text("p1")})
	r2, _ := db.Insert("Writes", []Value{Text("a1"), Text("p1")})
	if got := w.LookupEq(ci, Text("p1")); len(got) != 2 {
		t.Fatalf("LookupEq after inserts = %v", got)
	}
	if err := db.Delete("Writes", r1); err != nil {
		t.Fatal(err)
	}
	got := w.LookupEq(ci, Text("p1"))
	if len(got) != 1 || got[0] != r2 {
		t.Fatalf("LookupEq after delete = %v, want [%d]", got, r2)
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	db := newBibDB(t)
	for i := 0; i < 5; i++ {
		db.Insert("Author", []Value{Text(fmt.Sprintf("a%d", i)), Text("X")})
	}
	var seen []RID
	db.Table("Author").Scan(func(rid RID, _ []Value) bool {
		seen = append(seen, rid)
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Errorf("scan order = %v", seen)
	}
}

func TestDropTable(t *testing.T) {
	db := newBibDB(t)
	if err := db.DropTable("Paper"); !errors.Is(err, ErrFKRestrict) {
		t.Errorf("dropping referenced table: want ErrFKRestrict, got %v", err)
	}
	if err := db.DropTable("Cites"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("Writes"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("Paper"); err != nil {
		t.Errorf("dropping Paper after its referencers: %v", err)
	}
	if db.Table("Paper") != nil {
		t.Error("dropped table still visible")
	}
	if err := db.DropTable("Paper"); !errors.Is(err, ErrNoTable) {
		t.Errorf("want ErrNoTable, got %v", err)
	}
}

func TestTableNamesOrder(t *testing.T) {
	db := newBibDB(t)
	want := []string{"Paper", "Author", "Writes", "Cites"}
	got := db.TableNames()
	if len(got) != len(want) {
		t.Fatalf("TableNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TableNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestInsertMap(t *testing.T) {
	db := newBibDB(t)
	rid, err := db.InsertMap("Paper", map[string]Value{"paperid": Text("p1")})
	if err != nil {
		t.Fatal(err)
	}
	row := db.Table("Paper").Row(rid)
	if !row[1].IsNull() {
		t.Errorf("omitted column should be NULL, got %v", row[1])
	}
	if _, err := db.InsertMap("Paper", map[string]Value{"bogus": Text("x")}); !errors.Is(err, ErrNoColumn) {
		t.Errorf("want ErrNoColumn, got %v", err)
	}
}

func TestSelfReferencingFK(t *testing.T) {
	db := NewDatabase()
	_, err := db.CreateTable(&TableSchema{
		Name: "emp",
		Columns: []Column{
			{Name: "id", Type: TypeInt, NotNull: true},
			{Name: "boss", Type: TypeInt},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []ForeignKey{{Column: "boss", RefTable: "emp"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("emp", []Value{Int(1), Null()}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("emp", []Value{Int(2), Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("emp", []Value{Int(3), Int(99)}); !errors.Is(err, ErrFKViolation) {
		t.Errorf("want ErrFKViolation, got %v", err)
	}
}

func TestFKDefaultWeightAndRefColumn(t *testing.T) {
	db := newBibDB(t)
	w := db.Table("Writes").Schema()
	for _, fk := range w.ForeignKeys {
		if fk.Weight != 1 {
			t.Errorf("default FK weight = %v, want 1", fk.Weight)
		}
		if fk.RefColumn == "" {
			t.Error("RefColumn should be resolved to the PK")
		}
	}
	c := db.Table("Cites").Schema()
	for _, fk := range c.ForeignKeys {
		if fk.Weight != 2 {
			t.Errorf("Cites FK weight = %v, want 2", fk.Weight)
		}
	}
}

func TestTypeCoercionOnInsert(t *testing.T) {
	db := NewDatabase()
	db.CreateTable(&TableSchema{
		Name: "t",
		Columns: []Column{
			{Name: "i", Type: TypeInt},
			{Name: "f", Type: TypeFloat},
		},
	})
	rid, err := db.Insert("t", []Value{Float(3), Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	row := db.Table("t").Row(rid)
	if row[0].T != TypeInt || row[0].I != 3 {
		t.Errorf("coerced int = %v", row[0])
	}
	if row[1].T != TypeFloat || row[1].F != 2 {
		t.Errorf("coerced float = %v", row[1])
	}
	if _, err := db.Insert("t", []Value{Text("xyz"), Null()}); err == nil {
		t.Error("inserting text into int column should fail")
	}
}

func TestStats(t *testing.T) {
	db := newBibDB(t)
	db.Insert("Author", []Value{Text("a1"), Text("X")})
	s := db.Stats()
	if s.Tables != 4 || s.Rows != 1 || s.FKs != 4 {
		t.Errorf("Stats = %+v", s)
	}
}
