package eval

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

// suiteFixture caches the small DBLP searcher across tests in this package
// (building it is the expensive part).
type suiteFixture struct {
	db      *sqldb.Database
	g       *graph.Graph
	s       *core.Searcher
	queries []Query
}

// The fixture is built exactly once under sync.Once so tests running in
// parallel (or helpers called from subtests) cannot race on the package
// global; fixtureErr carries a build failure to every caller.
var (
	fixtureOnce   sync.Once
	cachedFixture *suiteFixture
	fixtureErr    error
)

func getFixture(t *testing.T) *suiteFixture {
	t.Helper()
	fixtureOnce.Do(func() {
		db, err := datagen.BuildDBLP(datagen.SmallDBLP())
		if err != nil {
			fixtureErr = err
			return
		}
		g, err := graph.Build(db, nil)
		if err != nil {
			fixtureErr = err
			return
		}
		ix, err := index.Build(db, g)
		if err != nil {
			fixtureErr = err
			return
		}
		s := core.NewSearcher(g, ix)
		queries, err := DBLPSuite(db, g)
		if err != nil {
			fixtureErr = err
			return
		}
		cachedFixture = &suiteFixture{db: db, g: g, s: s, queries: queries}
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return cachedFixture
}

func TestDBLPSuiteShape(t *testing.T) {
	f := getFixture(t)
	if len(f.queries) != 7 {
		t.Errorf("suite has %d queries, want 7 (as in §5.3)", len(f.queries))
	}
	total := 0
	for _, q := range f.queries {
		if len(q.Ideals) == 0 {
			t.Errorf("query %s has no ideals", q.Name)
		}
		total += len(q.Ideals)
	}
	if total < 7 {
		t.Errorf("total ideals = %d", total)
	}
}

func TestQueryErrorAtBestSetting(t *testing.T) {
	f := getFixture(t)
	opts := DefaultDBLPOptions() // λ=0.2, EdgeLog — the paper's winner
	for _, q := range f.queries {
		raw, worst, ranks, err := QueryError(f.s, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if worst <= 0 {
			t.Errorf("query %s worst = %v", q.Name, worst)
		}
		if raw > worst {
			t.Errorf("query %s raw %v exceeds worst %v", q.Name, raw, worst)
		}
		t.Logf("query %-18s raw=%4.0f worst=%4.0f ranks=%v", q.Name, raw, worst, ranks)
	}
	scaled, err := ScaledError(f.s, f.queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ~0 at this setting; give headroom for the
	// synthetic data.
	if scaled > 12 {
		t.Errorf("scaled error at λ=0.2+EdgeLog = %.1f, want <= 12", scaled)
	}
}

// TestFigure5Shape verifies the qualitative claims of Figure 5:
// λ=0.2+EdgeLog best (≈0), λ=1 worst (≈15 in the paper), λ=0 and λ=0.8 in
// between, and log scaling helping at good settings.
func TestFigure5Shape(t *testing.T) {
	f := getFixture(t)
	points, err := SweepFigure5(f.s, f.queries, DefaultDBLPOptions())
	if err != nil {
		t.Fatal(err)
	}
	get := func(lambda float64, edgeLog bool) float64 {
		for _, p := range points {
			if p.Lambda == lambda && p.EdgeLog == edgeLog {
				return p.Scaled
			}
		}
		t.Fatalf("missing sweep point λ=%v log=%v", lambda, edgeLog)
		return 0
	}
	t.Log("\n" + FormatFigure5(points))

	best := get(0.2, true)
	if best > 10 {
		t.Errorf("λ=0.2+log error = %.1f, want near 0", best)
	}
	if w := get(1.0, true); w <= best {
		t.Errorf("λ=1 (%.1f) should be worse than λ=0.2 (%.1f)", w, best)
	}
	if w := get(1.0, false); w <= best {
		t.Errorf("λ=1 no-log (%.1f) should be worse than best (%.1f)", w, best)
	}
	if w := get(0, true); w < best {
		t.Errorf("λ=0 (%.1f) should not beat λ=0.2 (%.1f)", w, best)
	}
	// Log scaling helps at the good λ settings.
	if get(0.2, true) > get(0.2, false) {
		t.Errorf("edge log should help at λ=0.2: log=%.1f nolog=%.1f",
			get(0.2, true), get(0.2, false))
	}
	b := Best(points)
	if !(b.Lambda > 0 && b.Lambda < 1) {
		t.Errorf("best setting λ=%v; expected an interior λ", b.Lambda)
	}
}

// TestCombinationModeStability reproduces the §5.3 bullet: the combination
// mode (additive vs multiplicative) has almost no impact on error scores.
func TestCombinationModeStability(t *testing.T) {
	f := getFixture(t)
	for _, lambda := range []float64{0.2, 0.5} {
		add := DefaultDBLPOptions()
		add.Score = core.ScoreOptions{Lambda: lambda, EdgeLog: false}
		mul := DefaultDBLPOptions()
		mul.Score = core.ScoreOptions{Lambda: lambda, EdgeLog: false, Combine: core.Multiplicative}
		ea, err := ScaledError(f.s, f.queries, add)
		if err != nil {
			t.Fatal(err)
		}
		em, err := ScaledError(f.s, f.queries, mul)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(ea - em); diff > 15 {
			t.Errorf("λ=%v: additive err %.1f vs multiplicative %.1f (Δ=%.1f)", lambda, ea, em, diff)
		}
	}
}

// TestNodeLogStability reproduces the §5.3 bullet: node log-scaling gives
// the same ranking on these examples.
func TestNodeLogStability(t *testing.T) {
	f := getFixture(t)
	plain := DefaultDBLPOptions()
	plain.Score = core.ScoreOptions{Lambda: 0.2, EdgeLog: true, NodeLog: false}
	logged := DefaultDBLPOptions()
	logged.Score = core.ScoreOptions{Lambda: 0.2, EdgeLog: true, NodeLog: true}
	ep, err := ScaledError(f.s, f.queries, plain)
	if err != nil {
		t.Fatal(err)
	}
	el, err := ScaledError(f.s, f.queries, logged)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(ep - el); diff > 10 {
		t.Errorf("node log changed error too much: %.1f vs %.1f", ep, el)
	}
}

func TestSweepFullCoversEightCombinations(t *testing.T) {
	f := getFixture(t)
	points, err := SweepFull(f.s, f.queries, DefaultDBLPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8*len(Lambdas) {
		t.Errorf("sweep points = %d, want %d", len(points), 8*len(Lambdas))
	}
	discarded := 0
	for _, p := range points {
		if p.Discarded() {
			discarded++
		}
	}
	// 3 of 8 combinations involve log+multiplicative (EdgeLog, NodeLog,
	// both) — the ones the paper discarded.
	if discarded != 3*len(Lambdas) {
		t.Errorf("discarded = %d, want %d", discarded, 3*len(Lambdas))
	}
}

func TestFormatFigure5(t *testing.T) {
	pts := []SweepPoint{
		{Lambda: 0.2, EdgeLog: true, Scaled: 1.5},
		{Lambda: 0.2, EdgeLog: false, Scaled: 7.5},
	}
	s := FormatFigure5(pts)
	if !strings.Contains(s, "lambda") || !strings.Contains(s, "0.2") {
		t.Errorf("FormatFigure5 = %q", s)
	}
}

func TestMissingIdealGetsRank11(t *testing.T) {
	f := getFixture(t)
	q := Query{
		Name:  "impossible",
		Terms: []string{"soumen", "sunita"},
		Ideals: []IdealAnswer{
			{Desc: "never matches", Match: func(*core.Answer, graph.View) bool { return false }},
		},
	}
	raw, worst, ranks, err := QueryError(f.s, q, DefaultDBLPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ranks[0] != MissingRank {
		t.Errorf("rank = %d, want %d", ranks[0], MissingRank)
	}
	if raw != worst {
		t.Errorf("raw %v should equal worst %v for all-missing", raw, worst)
	}
}

func TestIdealConsumedOnce(t *testing.T) {
	f := getFixture(t)
	// Two identical ideals: the second must not reuse the first's answer.
	match := containsAll()
	q := Query{
		Name:  "dup-ideals",
		Terms: []string{"mohan"},
		Ideals: []IdealAnswer{
			{Desc: "any answer", Match: match},
			{Desc: "any answer again", Match: match},
		},
	}
	_, _, ranks, err := QueryError(f.s, q, DefaultDBLPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) == 2 && ranks[0] == ranks[1] {
		t.Errorf("both ideals matched the same answer: ranks = %v", ranks)
	}
}
