// Package eval reproduces the paper's evaluation methodology (Section 5.3):
// a set of benchmark queries with hand-picked ideal answers, a rank-
// difference error score per parameter setting (missing answers count as
// rank 11, one past the 10 answers examined), scaling so the worst possible
// error is 100, and the λ × edge-log parameter sweep behind Figure 5.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/graph"
)

// IdealAnswer is one hand-picked ideal answer: a human-readable description
// plus a predicate deciding whether an emitted answer is that ideal.
// Following the paper, answers are compared as trees ("we considered
// answers to be the same if their trees were the same, even if the roots
// were different"), so predicates usually test node membership.
type IdealAnswer struct {
	Desc  string
	Match func(a *core.Answer, g graph.View) bool
}

// Query is one evaluation query with its ideal answers in ideal-rank order.
type Query struct {
	Name   string
	Terms  []string
	Ideals []IdealAnswer
}

// MissingRank is the rank assigned to an ideal answer that does not appear
// among the examined answers: one more than the number examined (§5.3).
const MissingRank = 11

// AnswersExamined is how many answers each query run examines (§5.3:
// "stopping at 10 answers").
const AnswersExamined = 10

// QueryError runs q at the given options and returns the raw error (sum of
// |ideal rank − actual rank|), the worst possible error for the query, and
// the actual ranks (MissingRank for absent ideals).
func QueryError(s *core.Searcher, q Query, opts *core.Options) (raw, worst float64, ranks []int, err error) {
	o := *opts
	o.TopK = AnswersExamined
	answers, err := s.Search(q.Terms, &o)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("eval: query %s: %w", q.Name, err)
	}
	used := make([]bool, len(answers))
	ranks = make([]int, len(q.Ideals))
	for i, ideal := range q.Ideals {
		idealRank := i + 1
		actual := MissingRank
		for j, a := range answers {
			if used[j] {
				continue
			}
			if ideal.Match(a, s.Graph()) {
				actual = j + 1
				used[j] = true
				break
			}
		}
		ranks[i] = actual
		raw += math.Abs(float64(idealRank - actual))
		worst += math.Abs(float64(idealRank - MissingRank))
	}
	return raw, worst, ranks, nil
}

// ScaledError runs all queries at one parameter setting and returns the
// error scaled so the worst possible score is 100.
func ScaledError(s *core.Searcher, queries []Query, opts *core.Options) (float64, error) {
	var raw, worst float64
	for _, q := range queries {
		r, w, _, err := QueryError(s, q, opts)
		if err != nil {
			return 0, err
		}
		raw += r
		worst += w
	}
	if worst == 0 {
		return 0, fmt.Errorf("eval: no ideal answers defined")
	}
	return 100 * raw / worst, nil
}

// SweepPoint is one cell of the Figure 5 surface.
type SweepPoint struct {
	Lambda  float64
	EdgeLog bool
	NodeLog bool
	Mult    bool
	Scaled  float64
}

// Lambdas is the λ grid of Figure 5.
var Lambdas = []float64{0, 0.2, 0.5, 0.8, 1.0}

// SweepFigure5 computes the Figure 5 surface: scaled error against λ and
// edge log-scaling (node log off, additive combination, exactly the axes
// of the paper's figure).
func SweepFigure5(s *core.Searcher, queries []Query, base *core.Options) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, edgeLog := range []bool{false, true} {
		for _, lambda := range Lambdas {
			o := *base
			o.Score = core.ScoreOptions{Lambda: lambda, EdgeLog: edgeLog}
			scaled, err := ScaledError(s, queries, &o)
			if err != nil {
				return nil, err
			}
			out = append(out, SweepPoint{Lambda: lambda, EdgeLog: edgeLog, Scaled: scaled})
		}
	}
	return out, nil
}

// SweepFull extends the sweep over node log-scaling and combination mode —
// the remaining §2.3 parameters the paper reports bullet-point findings
// for. The three log+multiplicative combinations the paper discarded are
// included for completeness but flagged by Discarded.
func SweepFull(s *core.Searcher, queries []Query, base *core.Options) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, mult := range []bool{false, true} {
		for _, nodeLog := range []bool{false, true} {
			for _, edgeLog := range []bool{false, true} {
				for _, lambda := range Lambdas {
					o := *base
					o.Score = core.ScoreOptions{Lambda: lambda, EdgeLog: edgeLog, NodeLog: nodeLog}
					if mult {
						o.Score.Combine = core.Multiplicative
					}
					scaled, err := ScaledError(s, queries, &o)
					if err != nil {
						return nil, err
					}
					out = append(out, SweepPoint{
						Lambda: lambda, EdgeLog: edgeLog, NodeLog: nodeLog,
						Mult: mult, Scaled: scaled,
					})
				}
			}
		}
	}
	return out, nil
}

// Discarded reports whether the paper excluded this combination from its
// comparison (log scaling combined with multiplication).
func (p SweepPoint) Discarded() bool {
	return p.Mult && (p.EdgeLog || p.NodeLog)
}

// FormatFigure5 renders sweep points as the Figure 5 grid: rows are λ,
// columns are EdgeLog ∈ {0, 1}.
func FormatFigure5(points []SweepPoint) string {
	cell := make(map[[2]int]float64)
	for _, p := range points {
		e := 0
		if p.EdgeLog {
			e = 1
		}
		li := -1
		for i, l := range Lambdas {
			if l == p.Lambda {
				li = i
			}
		}
		if li >= 0 && !p.NodeLog && !p.Mult {
			cell[[2]int{li, e}] = p.Scaled
		}
	}
	var b strings.Builder
	b.WriteString("Figure 5: scaled error vs (lambda, EdgeLog)\n")
	b.WriteString("lambda   EdgeLog=0   EdgeLog=1\n")
	for i, l := range Lambdas {
		fmt.Fprintf(&b, "%-7.1f  %-10.1f  %-10.1f\n", l, cell[[2]int{i, 0}], cell[[2]int{i, 1}])
	}
	return b.String()
}

// Best returns the sweep point with the lowest error among the
// non-discarded combinations.
func Best(points []SweepPoint) SweepPoint {
	kept := make([]SweepPoint, 0, len(points))
	for _, p := range points {
		if !p.Discarded() {
			kept = append(kept, p)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Scaled < kept[j].Scaled })
	if len(kept) == 0 {
		return SweepPoint{}
	}
	return kept[0]
}
