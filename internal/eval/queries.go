package eval

import (
	"fmt"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/sqldb"
)

// DefaultDBLPOptions returns the search configuration used for the DBLP
// evaluation: link relations (Writes, Cites) may not be information nodes,
// mirroring the paper's §2.1 remark.
func DefaultDBLPOptions() *core.Options {
	o := core.DefaultOptions()
	o.ExcludedRootTables = []string{"Writes", "Cites"}
	return o
}

// nodeOf locates the graph node of a row by textual primary key.
func nodeOf(db *sqldb.Database, g graph.View, table, pk string) (graph.NodeID, error) {
	t := db.Table(table)
	if t == nil {
		return graph.NoNode, fmt.Errorf("eval: no table %s", table)
	}
	rid := t.LookupPK([]sqldb.Value{sqldb.Text(pk)})
	if rid < 0 {
		return graph.NoNode, fmt.Errorf("eval: no %s row %q", table, pk)
	}
	n := g.NodeOf(table, rid)
	if n == graph.NoNode {
		return graph.NoNode, fmt.Errorf("eval: no node for %s/%s", table, pk)
	}
	return n, nil
}

// containsAll matches answers whose trees contain every given node —
// root-insensitive tree identity, as §5.3 prescribes.
func containsAll(nodes ...graph.NodeID) func(*core.Answer, graph.View) bool {
	return func(a *core.Answer, _ graph.View) bool {
		for _, n := range nodes {
			if !a.ContainsNode(n) {
				return false
			}
		}
		return true
	}
}

// isSingleNode matches the single-node answer for n.
func isSingleNode(n graph.NodeID) func(*core.Answer, graph.View) bool {
	return func(a *core.Answer, _ graph.View) bool {
		return a.Root == n && len(a.Edges) == 0
	}
}

// TPCDSuite builds an evaluation query mix against a database produced by
// datagen.BuildTPCD: part-name words, part-plus-metadata and single-term
// queries over the order catalog. TPC-D has no hand-picked ideal answers
// in the paper, so these queries carry none — they exist for cross-
// strategy and cross-build parity checks, which compare full ranked
// answer lists rather than error scores.
func TPCDSuite() []Query {
	return []Query{
		{Name: "part-words", Terms: []string{"steel", "widget"}},
		{Name: "part-words-three", Terms: []string{"premium", "steel", "widget"}},
		{Name: "part-words-rare", Terms: []string{"economy", "widget"}},
		{Name: "part-and-supplier", Terms: []string{"steel", "supplier"}},
		{Name: "single-popular", Terms: []string{"widget"}},
		{Name: "single-metadata", Terms: []string{"lineitem"}},
	}
}

// DBLPSuite builds the seven evaluation queries of §5.3 against a database
// produced by datagen.BuildDBLP. The query mix follows the paper's
// description: coauthor pairs, authors with a common coauthor, author plus
// title words, title words alone, and single-term queries.
func DBLPSuite(db *sqldb.Database, g graph.View) ([]Query, error) {
	n := func(table, pk string) graph.NodeID {
		node, err := nodeOf(db, g, table, pk)
		if err != nil {
			panic(err) // converted below
		}
		return node
	}
	var queries []Query
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(error); ok {
					err = e
					return
				}
				panic(r)
			}
		}()
		chak98 := n("Paper", datagen.PaperChakrabartiSD98)
		second := n("Paper", datagen.PaperSoumenSunita2nd)
		soumen := n("Author", datagen.AuthorSoumen)
		sunita := n("Author", datagen.AuthorSunita)
		byron := n("Author", datagen.AuthorByron)
		stone := n("Author", datagen.AuthorStonebraker)
		seltzer := n("Author", datagen.AuthorSeltzer)
		gray := n("Author", datagen.AuthorJimGray)
		grayTC := n("Paper", datagen.PaperGrayTransaction)
		book := n("Paper", datagen.PaperGrayReuterBook)
		cmohan := n("Author", datagen.AuthorCMohan)
		ahuja := n("Author", datagen.AuthorMohanAhuja)
		kamat := n("Author", datagen.AuthorMohanKamat)

		queries = []Query{
			{
				Name:  "coauthors",
				Terms: []string{"soumen", "sunita"},
				Ideals: []IdealAnswer{
					{Desc: "ChakrabartiSD98 connecting Soumen and Sunita", Match: containsAll(chak98, soumen, sunita)},
					{Desc: "their second paper connecting them", Match: containsAll(second, soumen, sunita)},
				},
			},
			{
				Name:  "common-coauthor",
				Terms: []string{"seltzer", "sunita"},
				Ideals: []IdealAnswer{
					{Desc: "Seltzer and Sunita bridged through Stonebraker", Match: containsAll(stone, seltzer, sunita)},
				},
			},
			{
				Name:  "author-and-title",
				Terms: []string{"gray", "concepts"},
				Ideals: []IdealAnswer{
					{Desc: "the Gray–Reuter book written by Gray", Match: containsAll(book, gray)},
				},
			},
			{
				Name:  "title-words",
				Terms: []string{"mining", "surprising", "patterns"},
				Ideals: []IdealAnswer{
					{Desc: "ChakrabartiSD98 itself", Match: isSingleNode(chak98)},
				},
			},
			{
				Name:  "single-author",
				Terms: []string{"mohan"},
				Ideals: []IdealAnswer{
					{Desc: "C. Mohan (most papers)", Match: isSingleNode(cmohan)},
					{Desc: "Mohan Ahuja", Match: isSingleNode(ahuja)},
					{Desc: "Mohan Kamat", Match: isSingleNode(kamat)},
				},
			},
			{
				Name:  "single-title-word",
				Terms: []string{"transaction"},
				Ideals: []IdealAnswer{
					{Desc: "Gray's classic (most cited)", Match: isSingleNode(grayTC)},
					{Desc: "the Gray–Reuter book", Match: isSingleNode(book)},
				},
			},
			{
				Name:  "three-coauthors",
				Terms: []string{"soumen", "sunita", "byron"},
				Ideals: []IdealAnswer{
					{Desc: "ChakrabartiSD98 connecting all three", Match: containsAll(chak98, soumen, sunita, byron)},
				},
			},
		}
		return nil
	}()
	if err != nil {
		return nil, err
	}
	return queries, nil
}
