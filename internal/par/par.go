// Package par provides the tiny work-distribution helper shared by the
// parallel graph and index builders: a deterministic fan-out of n
// independent work items over a bounded number of goroutines. The helper
// carries no ordering guarantees — callers that need deterministic output
// must write results into per-item slots and merge them in item order.
package par

import (
	"sync"
	"sync/atomic"
)

// Run invokes fn(i) for every i in [0, n), using at most workers
// goroutines. workers <= 1 (or n <= 1) degrades to a plain serial loop on
// the calling goroutine, so the serial and parallel paths share one code
// path. Run returns when every invocation has completed. fn must be safe
// to call concurrently from multiple goroutines.
func Run(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
