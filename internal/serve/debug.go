package serve

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"time"
)

// DebugHandler serves the observability surface:
//
//	/debug       — a human-readable page: gauges, counters, latency
//	               histograms (count/mean/p50/p99/max) and the slow-query
//	               log
//	/debug/vars  — the same data as JSON, for scrapers
//
// Mount it under the /debug prefix. The handler only reads; it holds no
// locks across requests and is safe to serve while the engine is under
// churn.
func DebugHandler(m *Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug", func(w http.ResponseWriter, r *http.Request) {
		renderDebugPage(w, m)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := m.Registry().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

func renderDebugPage(w http.ResponseWriter, m *Metrics) {
	snap := m.Registry().Snapshot()
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><title>BANKS /debug</title><style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-bottom: 1.5em; }
td, th { border: 1px solid #aaa; padding: 3px 8px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
</style></head><body><h1>BANKS serving metrics</h1>`)

	b.WriteString("<h2>Gauges</h2><table><tr><th>gauge</th><th>value</th></tr>")
	for _, k := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td></tr>", template.HTMLEscapeString(k), snap.Gauges[k])
	}
	b.WriteString("</table>")

	b.WriteString("<h2>Counters</h2><table><tr><th>counter</th><th>value</th></tr>")
	for _, k := range sortedKeys(snap.Counters) {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td></tr>", template.HTMLEscapeString(k), snap.Counters[k])
	}
	b.WriteString("</table>")

	b.WriteString("<h2>Latency histograms</h2><table><tr><th>histogram</th><th>count</th>" +
		"<th>mean</th><th>p50</th><th>p99</th><th>max</th></tr>")
	for _, k := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[k]
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>",
			template.HTMLEscapeString(k), h.Count,
			fmtSeconds(h.MeanS), fmtSeconds(h.P50S), fmtSeconds(h.P99S), fmtSeconds(h.MaxS))
	}
	b.WriteString("</table>")

	if slow := m.SlowQueries(); len(slow) > 0 {
		b.WriteString("<h2>Slow queries (most recent first)</h2><table><tr><th>when</th>" +
			"<th>query</th><th>strategy</th><th>class</th><th>elapsed</th><th>stats</th></tr>")
		for _, q := range slow {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%v</td><td>%s</td></tr>",
				q.When.Format(time.RFC3339), template.HTMLEscapeString(q.Query),
				template.HTMLEscapeString(q.Strategy), template.HTMLEscapeString(q.Class),
				q.Elapsed.Round(time.Microsecond),
				template.HTMLEscapeString(fmt.Sprintf("%+v", q.Detail)))
		}
		b.WriteString("</table>")
	}
	b.WriteString(`<p><a href="/debug/vars">JSON</a></p></body></html>`)

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
