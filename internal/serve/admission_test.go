package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateAdmitRelease covers the fast path: slots free, requests admitted
// up to Workers, released slots reusable.
func TestGateAdmitRelease(t *testing.T) {
	g := NewGate(GateConfig{Workers: 2, Queue: 0})
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	r1()
	r1() // double release must be a no-op
	if st := g.Stats(); st.InFlight != 1 || st.Done != 1 {
		t.Fatalf("after release: %+v", st)
	}
	r3, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2()
	r3()
	if st := g.Stats(); st.InFlight != 0 || st.Admitted != 3 || st.Done != 3 {
		t.Fatalf("final: %+v", st)
	}
}

// TestGateShedImmediate pins the load-shedding contract: with the pool
// and the queue both full, Acquire rejects with ErrShed without blocking.
func TestGateShedImmediate(t *testing.T) {
	g := NewGate(GateConfig{Workers: 1, Queue: 0})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("shed took %v; must be immediate", elapsed)
	}
	if !IsOverload(ErrShed) || !IsOverload(ErrQueueTimeout) || IsOverload(context.Canceled) {
		t.Error("IsOverload misclassifies")
	}
	if st := g.Stats(); st.Shed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	release()
	// The slot freed: admission works again.
	r, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r()
}

// TestGateQueueDrains asserts a queued request gets the slot when the
// holder releases it.
func TestGateQueueDrains(t *testing.T) {
	g := NewGate(GateConfig{Workers: 1, Queue: 1})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	// Wait until the second request is queued, then release.
	deadline := time.Now().Add(2 * time.Second)
	for g.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued request: %v", err)
	}
	if st := g.Stats(); st.Queued != 0 || st.InFlight != 0 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestGateQueueTimeout asserts a queued request sheds with
// ErrQueueTimeout once its patience runs out.
func TestGateQueueTimeout(t *testing.T) {
	g := NewGate(GateConfig{Workers: 1, Queue: 1, QueueTimeout: 10 * time.Millisecond})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if st := g.Stats(); st.TimedOut != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestGateContextCanceledWhileQueued asserts the caller's context ends
// the wait with the context's error.
func TestGateContextCanceledWhileQueued(t *testing.T) {
	g := NewGate(GateConfig{Workers: 1, Queue: 1})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(2 * time.Second)
		for g.Stats().Queued == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	if _, err := g.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := g.Stats(); st.Canceled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestGateNilAdmitsEverything: a nil gate is admission-disabled, not a
// panic.
func TestGateNilAdmitsEverything(t *testing.T) {
	var g *Gate
	r, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r()
	if g.RetryAfter() != 0 {
		t.Error("nil gate RetryAfter != 0")
	}
	if st := g.Stats(); st != (GateStats{}) {
		t.Errorf("nil gate stats = %+v", st)
	}
}

// TestGateSaturation is the -race saturation test: a burst far above
// capacity must keep in-flight bounded at Workers, shed the overflow
// immediately, drain the queue completely, balance its counters exactly,
// and leak no goroutines.
func TestGateSaturation(t *testing.T) {
	const workers, queue, requests = 4, 8, 400
	g := NewGate(GateConfig{Workers: workers, Queue: queue})
	before := runtime.NumGoroutine()

	var (
		wg          sync.WaitGroup
		ok, shed    atomic.Int64
		maxInFlight atomic.Int64
		running     atomic.Int64
	)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(context.Background())
			if err != nil {
				if !errors.Is(err, ErrShed) {
					t.Errorf("unexpected error: %v", err)
				}
				shed.Add(1)
				return
			}
			n := running.Add(1)
			for {
				m := maxInFlight.Load()
				if n <= m || maxInFlight.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond) // hold the slot briefly
			running.Add(-1)
			release()
			ok.Add(1)
		}()
	}
	wg.Wait()

	if got := maxInFlight.Load(); got > workers {
		t.Errorf("observed %d concurrent holders, cap is %d", got, workers)
	}
	st := g.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("gate not drained: %+v", st)
	}
	if st.Admitted != ok.Load() || st.Shed != shed.Load() || st.Done != st.Admitted {
		t.Errorf("counter imbalance: stats=%+v ok=%d shed=%d", st, ok.Load(), shed.Load())
	}
	if st.Admitted+st.Shed != requests {
		t.Errorf("admitted %d + shed %d != %d requests", st.Admitted, st.Shed, requests)
	}
	// Under real overload some requests must actually have been shed for
	// this test to mean anything.
	if shed.Load() == 0 {
		t.Log("warning: no sheds observed (slow host?); invariants still checked")
	}

	// No goroutine leak: everything spawned above must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines: %d before, %d after drain", before, after)
	}
}
