//go:build !linux

package serve

// PeakRSSBytes is unavailable off Linux; callers print "n/a" for 0.
func PeakRSSBytes() int64 { return 0 }
