package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a dependency-free metrics registry: named counters, gauges
// and latency histograms, all safe for concurrent use. Instruments are
// created on first touch (get-or-create), so recording code never has to
// coordinate with wiring code. Gauges are function-backed — the registry
// samples them at snapshot time — which is how live engine state (cache
// residency, pending mutations, store footprint) shows up on /debug
// without a write on every change.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or replaces) a function-backed gauge sampled at
// snapshot time. fn must be safe for concurrent use.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Histogram returns the named latency histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// histBuckets are the histogram's exponential upper bounds: 100µs
// doubling through ~52s, plus a +Inf overflow bucket. Twenty doublings
// cover everything from a cache hit to a runaway expansion while keeping
// the per-histogram footprint at a few hundred bytes.
const numHistBuckets = 20

var histBuckets = func() [numHistBuckets]time.Duration {
	var b [numHistBuckets]time.Duration
	d := 100 * time.Microsecond
	for i := range b {
		b[i] = d
		d *= 2
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram. Observations are
// lock-free atomic increments; quantiles are estimated by linear
// interpolation inside the bucket containing the target rank, which is
// exact enough for p50/p99 dashboards at a tiny, allocation-free cost.
type Histogram struct {
	counts [numHistBuckets + 1]atomic.Int64 // last bucket: overflow
	total  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// NewHistogram returns an empty histogram with the standard latency
// buckets.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(histBuckets), func(i int) bool { return d <= histBuckets[i] })
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.Add(int64(d))
	for {
		m := h.max.Load()
		if int64(d) <= m || h.max.CompareAndSwap(m, int64(d)) {
			break
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the average observed latency (0 with no samples).
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed latency.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// latencies: the bucket holding the target rank is found and the value
// interpolated linearly inside it. Returns 0 with no samples; overflow
// samples report the observed maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank || i == len(histBuckets) {
			if i == len(histBuckets) {
				return h.Max()
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = histBuckets[i-1]
			}
			hi := histBuckets[i]
			frac := (rank - cum) / c
			if math.IsNaN(frac) || frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return h.Max()
}

// HistogramSnapshot is one histogram's exported view.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	MeanS float64 `json:"mean_s"`
	P50S  float64 `json:"p50_s"`
	P99S  float64 `json:"p99_s"`
	MaxS  float64 `json:"max_s"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		MeanS: h.Mean().Seconds(),
		P50S:  h.Quantile(0.50).Seconds(),
		P99S:  h.Quantile(0.99).Seconds(),
		MaxS:  h.Max().Seconds(),
	}
}

// Snapshot is a point-in-time view of every instrument, with
// deterministically ordered names (map iteration order does not leak
// into rendered output).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot samples every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, fn := range gauges {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (the /debug/vars body).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// sortedKeys returns m's keys sorted, for deterministic text rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ClassOf buckets a query into the coarse classes the latency histograms
// are keyed by: term count (1term/2term/3term+) with prefix/qualified
// markers. Classes must stay low-cardinality — every distinct class is a
// live histogram.
func ClassOf(terms int, prefix, qualified bool) string {
	var class string
	switch {
	case terms <= 1:
		class = "1term"
	case terms == 2:
		class = "2term"
	default:
		class = "3term+"
	}
	if qualified {
		class += "_qualified"
	}
	if prefix {
		class += "_prefix"
	}
	return class
}

// QueryLabel names the latency histogram for one (strategy, class) pair.
func QueryLabel(strategy, class string) string {
	if strategy == "" {
		strategy = "backward"
	}
	return fmt.Sprintf("query_latency_%s_%s", strategy, class)
}

// IsHeavyClass reports whether a ClassOf class belongs on the heavy
// admission gate: everything beyond a plain single-term query (more
// terms multiply the iterator frontier; prefix and qualified matching
// widen the match sets). Single-term exact queries are the cheap class
// that must stay admissible while heavy traffic queues.
func IsHeavyClass(class string) bool { return class != "1term" }
