package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 samples spread evenly across 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Mean(), 50500*time.Microsecond; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	// With exponential buckets the estimate is coarse; assert the right
	// ballpark, not exactness.
	p50 := h.Quantile(0.50)
	if p50 < 25*time.Millisecond || p50 > 80*time.Millisecond {
		t.Errorf("p50 = %v, want ~50ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 80*time.Millisecond || p99 > 110*time.Millisecond {
		t.Errorf("p99 = %v, want ~99ms", p99)
	}
	if h.Quantile(1) < p99 {
		t.Errorf("p100 %v < p99 %v", h.Quantile(1), p99)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
	// A sample beyond the last bucket lands in overflow; quantiles there
	// report the observed max rather than +Inf.
	h.Observe(5 * time.Minute)
	if got := h.Quantile(0.99); got != 5*time.Minute {
		t.Errorf("overflow p99 = %v, want 5m", got)
	}
	h.Observe(-time.Second) // negative clamps to 0, must not panic
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", func() int64 { return 7 })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8000 {
		t.Errorf("counter = %d", s.Counters["c"])
	}
	if s.Gauges["g"] != 7 {
		t.Errorf("gauge = %d", s.Gauges["g"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Errorf("hist count = %d", s.Histograms["h"].Count)
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total").Add(3)
	r.Gauge("cache_bytes", func() int64 { return 1024 })
	r.Histogram("lat").Observe(2 * time.Millisecond)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if decoded.Counters["queries_total"] != 3 || decoded.Gauges["cache_bytes"] != 1024 {
		t.Errorf("round trip lost data: %+v", decoded)
	}
	if decoded.Histograms["lat"].Count != 1 {
		t.Errorf("hist lost: %+v", decoded.Histograms)
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3)
	for i := 0; i < 5; i++ {
		l.Add(SlowQuery{Query: string(rune('a' + i))})
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	// Most recent first: e, d, c.
	if got[0].Query != "e" || got[1].Query != "d" || got[2].Query != "c" {
		t.Errorf("entries = %v", got)
	}
	var nilLog *SlowLog
	nilLog.Add(SlowQuery{})
	if nilLog.Entries() != nil {
		t.Error("nil log must discard")
	}
}

func TestClassOfAndQueryLabel(t *testing.T) {
	cases := []struct {
		terms             int
		prefix, qualified bool
		want              string
	}{
		{1, false, false, "1term"},
		{2, false, false, "2term"},
		{3, false, false, "3term+"},
		{7, false, false, "3term+"},
		{2, true, false, "2term_prefix"},
		{2, false, true, "2term_qualified"},
		{1, true, true, "1term_qualified_prefix"},
	}
	for _, c := range cases {
		if got := ClassOf(c.terms, c.prefix, c.qualified); got != c.want {
			t.Errorf("ClassOf(%d,%v,%v) = %q, want %q", c.terms, c.prefix, c.qualified, got, c.want)
		}
	}
	if got := QueryLabel("", "2term"); got != "query_latency_backward_2term" {
		t.Errorf("QueryLabel = %q", got)
	}
	if got := QueryLabel("batched", "1term"); got != "query_latency_batched_1term" {
		t.Errorf("QueryLabel = %q", got)
	}
}

func TestObserveQueryAndSlowLog(t *testing.T) {
	m := NewMetrics(10*time.Millisecond, 8)
	m.ObserveQuery(QueryOutcome{Query: "fast", Class: "1term", Elapsed: time.Millisecond})
	m.ObserveQuery(QueryOutcome{Query: "slow", Class: "1term", Elapsed: 50 * time.Millisecond})
	m.ObserveQuery(QueryOutcome{Query: "killed", Class: "2term", Elapsed: time.Millisecond, BudgetExhausted: true})
	m.ObserveQuery(QueryOutcome{Query: "late", Class: "2term", Elapsed: time.Millisecond, TimedOut: true})

	s := m.Registry().Snapshot()
	if s.Counters["queries_total"] != 4 {
		t.Errorf("total = %d", s.Counters["queries_total"])
	}
	if s.Counters["queries_ok"] != 3 || s.Counters["queries_timeout"] != 1 {
		t.Errorf("outcomes: %v", s.Counters)
	}
	if s.Counters["queries_budget_exhausted"] != 1 {
		t.Errorf("budget count = %d", s.Counters["queries_budget_exhausted"])
	}
	slow := m.SlowQueries()
	if len(slow) != 3 { // slow, killed, late — not fast
		t.Fatalf("slow log = %v", slow)
	}
	if slow[0].Query != "late" || slow[2].Query != "slow" {
		t.Errorf("slow order = %v", slow)
	}

	// nil Metrics must be inert.
	var nilM *Metrics
	nilM.ObserveQuery(QueryOutcome{})
	nilM.BindGate(nil)
	if nilM.Registry() != nil || nilM.SlowQueries() != nil {
		t.Error("nil metrics must return nil views")
	}
}

func TestDebugHandler(t *testing.T) {
	m := NewMetrics(0, 0)
	m.ObserveQuery(QueryOutcome{Query: "sunita", Class: "1term", Elapsed: 600 * time.Millisecond})
	g := NewGate(GateConfig{Workers: 2, Queue: 4})
	m.BindGate(g)
	h := DebugHandler(m)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"gate_workers", "queries_total", "query_latency_backward_1term", "sunita"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("vars not JSON: %v", err)
	}
	if snap.Gauges["gate_workers"] != 2 || snap.Gauges["gate_queue_cap"] != 4 {
		t.Errorf("gate gauges: %v", snap.Gauges)
	}
	if snap.Counters["queries_total"] != 1 {
		t.Errorf("counters: %v", snap.Counters)
	}
}
