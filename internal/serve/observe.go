package serve

import (
	"time"
)

// Metrics bundles what the serving tier records per query: the registry
// of counters/gauges/histograms and the slow-query log, plus the
// threshold that routes a query into the log. A nil *Metrics disables
// all recording.
type Metrics struct {
	reg  *Registry
	slow *SlowLog
	// SlowThreshold routes queries at or above this latency into the
	// slow-query log (0: 500ms).
	slowThreshold time.Duration
}

// NewMetrics builds the serving tier's observability bundle.
// slowThreshold <= 0 defaults to 500ms; slowCap <= 0 defaults to 64
// retained slow queries.
func NewMetrics(slowThreshold time.Duration, slowCap int) *Metrics {
	if slowThreshold <= 0 {
		slowThreshold = 500 * time.Millisecond
	}
	return &Metrics{
		reg:           NewRegistry(),
		slow:          NewSlowLog(slowCap),
		slowThreshold: slowThreshold,
	}
}

// Registry returns the underlying instrument registry (nil-safe).
func (m *Metrics) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// SlowQueries returns the slow-query log entries, most recent first.
func (m *Metrics) SlowQueries() []SlowQuery {
	if m == nil {
		return nil
	}
	return m.slow.Entries()
}

// QueryOutcome describes one finished query for ObserveQuery.
type QueryOutcome struct {
	Query    string // the query text as received
	Strategy string // effective execution strategy ("" = backward)
	Class    string // ClassOf the request
	Elapsed  time.Duration
	Err      error // nil on success
	// BudgetExhausted mirrors core.Stats.BudgetExhausted: the query was
	// truncated by its cost budget.
	BudgetExhausted bool
	// TimedOut reports a context deadline ending the query.
	TimedOut bool
	// Detail carries the engine's execution statistics into the
	// slow-query log (typically a *core.Stats).
	Detail any
}

// ObserveQuery records one finished query: the per-(strategy, class)
// latency histogram, outcome counters, and — when it crossed the slow
// threshold — the slow-query log. Safe on a nil *Metrics.
func (m *Metrics) ObserveQuery(o QueryOutcome) {
	if m == nil {
		return
	}
	if o.Strategy == "" {
		o.Strategy = "backward" // the engine's default; QueryLabel does the same
	}
	m.reg.Histogram(QueryLabel(o.Strategy, o.Class)).Observe(o.Elapsed)
	m.reg.Counter("queries_total").Inc()
	switch {
	case o.TimedOut:
		m.reg.Counter("queries_timeout").Inc()
	case o.Err != nil:
		m.reg.Counter("queries_error").Inc()
	default:
		m.reg.Counter("queries_ok").Inc()
	}
	if o.BudgetExhausted {
		m.reg.Counter("queries_budget_exhausted").Inc()
	}
	if o.Elapsed >= m.slowThreshold || o.TimedOut || o.BudgetExhausted {
		m.slow.Add(SlowQuery{
			When:     time.Now(),
			Query:    o.Query,
			Strategy: o.Strategy,
			Class:    o.Class,
			Elapsed:  o.Elapsed,
			Detail:   o.Detail,
		})
	}
}

// BindGate registers the gate's live counters as gauges so admission
// state shows up on /debug alongside everything else.
func (m *Metrics) BindGate(g *Gate) { m.BindGateNamed("gate", g) }

// BindGateNamed is BindGate under an explicit gauge-name prefix, for
// servers running more than one admission gate (per-class admission:
// a "gate" for cheap queries and a "gate_heavy" for expensive ones).
func (m *Metrics) BindGateNamed(prefix string, g *Gate) {
	if m == nil || g == nil {
		return
	}
	m.reg.Gauge(prefix+"_inflight", func() int64 { return int64(g.Stats().InFlight) })
	m.reg.Gauge(prefix+"_queued", func() int64 { return int64(g.Stats().Queued) })
	m.reg.Gauge(prefix+"_workers", func() int64 { return int64(g.Stats().Workers) })
	m.reg.Gauge(prefix+"_queue_cap", func() int64 { return int64(g.Stats().Queue) })
	m.reg.Gauge(prefix+"_admitted_total", func() int64 { return g.Stats().Admitted })
	m.reg.Gauge(prefix+"_shed_total", func() int64 { return g.Stats().Shed })
	m.reg.Gauge(prefix+"_queue_timeout_total", func() int64 { return g.Stats().TimedOut })
	m.reg.Gauge(prefix+"_canceled_total", func() int64 { return g.Stats().Canceled })
}
