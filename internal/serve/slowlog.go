package serve

import (
	"sync"
	"time"
)

// SlowQuery is one entry of the slow-query log: the request as the user
// typed it, where it ran, how long it took, and the engine's execution
// statistics (a core.Stats value, carried as any so this package stays
// engine-agnostic) — enough to diagnose why it was slow without
// re-running it.
type SlowQuery struct {
	When     time.Time     `json:"when"`
	Query    string        `json:"query"`
	Strategy string        `json:"strategy"`
	Class    string        `json:"class"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Detail   any           `json:"detail,omitempty"`
}

// SlowLog is a bounded ring of the most recent slow queries. It is safe
// for concurrent use; a nil *SlowLog discards everything.
type SlowLog struct {
	mu      sync.Mutex
	entries []SlowQuery
	next    int
	full    bool
}

// NewSlowLog returns a ring holding the last capacity entries
// (capacity <= 0: 64).
func NewSlowLog(capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &SlowLog{entries: make([]SlowQuery, capacity)}
}

// Add records one slow query.
func (l *SlowLog) Add(q SlowQuery) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[l.next] = q
	l.next++
	if l.next == len(l.entries) {
		l.next = 0
		l.full = true
	}
}

// Entries returns the recorded queries, most recent first.
func (l *SlowLog) Entries() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.entries)
	}
	out := make([]SlowQuery, 0, n)
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.entries)
		}
		out = append(out, l.entries[idx])
	}
	return out
}
