// Package serve is the production front door of the BANKS serving tier:
// admission control (a bounded worker pool with a bounded wait queue and
// graceful load shedding), a dependency-free metrics registry (counters,
// gauges, bucketed latency histograms), a slow-query log, and the /debug
// surface that exposes all of it. The package is deliberately stdlib-only
// so the engine keeps its zero-dependency property.
//
// The design follows the classic overload playbook: concurrency is capped
// at a worker-pool bound (queries admitted beyond it wait in a bounded
// queue), and when the queue is full — or a queued request waits longer
// than its patience — the request is shed immediately with enough
// information for the client to back off (Retry-After). Shedding at the
// door keeps the goroutine count, and therefore memory, bounded no matter
// the offered load; the engine behind the door never sees more than
// Workers concurrent searches.
package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrShed is returned by Gate.Acquire when the wait queue is full: the
// request is rejected immediately, without blocking, so overload turns
// into fast 503s instead of a goroutine pile-up.
var ErrShed = errors.New("serve: overloaded, request shed")

// ErrQueueTimeout is returned when a request was queued but no worker
// slot freed within the gate's queue timeout. Clients should treat it
// exactly like ErrShed (back off and retry).
var ErrQueueTimeout = errors.New("serve: timed out waiting for a worker slot")

// Gate is the admission controller: at most Workers requests run
// concurrently, at most Queue more wait, the rest shed. The zero value is
// not usable; construct with NewGate. A nil *Gate is valid and admits
// everything (admission disabled).
type Gate struct {
	slots        chan struct{} // semaphore: len == in-flight requests
	workers      int
	queue        int64
	queueTimeout time.Duration
	retryAfter   time.Duration

	queued    atomic.Int64 // requests currently waiting for a slot
	admitted  atomic.Int64 // requests that got a slot (incl. after queueing)
	shed      atomic.Int64 // requests rejected because the queue was full
	timedOut  atomic.Int64 // requests rejected after queueTimeout in queue
	canceled  atomic.Int64 // requests whose context ended while queued
	completed atomic.Int64 // released slots
}

// GateConfig sizes a Gate.
type GateConfig struct {
	// Workers caps concurrently admitted requests (<= 0: 1).
	Workers int
	// Queue caps requests waiting for a slot (< 0: 0 — no waiting, every
	// request beyond Workers sheds immediately).
	Queue int
	// QueueTimeout caps how long a request may wait in the queue before
	// it is shed with ErrQueueTimeout (<= 0: wait as long as the
	// request's own context allows).
	QueueTimeout time.Duration
	// RetryAfter is the backoff hint reported by Gate.RetryAfter for shed
	// responses (<= 0: one second).
	RetryAfter time.Duration
}

// NewGate builds an admission gate from cfg.
func NewGate(cfg GateConfig) *Gate {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	return &Gate{
		slots:        make(chan struct{}, cfg.Workers),
		workers:      cfg.Workers,
		queue:        int64(cfg.Queue),
		queueTimeout: cfg.QueueTimeout,
		retryAfter:   cfg.RetryAfter,
	}
}

// Acquire admits the request or rejects it. On success it returns a
// release function that MUST be called exactly once when the request's
// work is done. On rejection it returns ErrShed (queue full),
// ErrQueueTimeout (patience exhausted while queued) or the context's
// error (caller went away while queued). Acquire on a nil gate admits
// immediately.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	// Fast path: a worker slot is free right now.
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.releaseFunc(), nil
	default:
	}
	// Slow path: join the bounded wait queue, or shed.
	if g.queued.Add(1) > g.queue {
		g.queued.Add(-1)
		g.shed.Add(1)
		return nil, ErrShed
	}
	defer g.queued.Add(-1)

	var timeout <-chan time.Time
	if g.queueTimeout > 0 {
		t := time.NewTimer(g.queueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.releaseFunc(), nil
	case <-timeout:
		g.timedOut.Add(1)
		return nil, ErrQueueTimeout
	case <-ctx.Done():
		g.canceled.Add(1)
		return nil, ctx.Err()
	}
}

func (g *Gate) releaseFunc() func() {
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			<-g.slots
			g.completed.Add(1)
		}
	}
}

// IsOverload reports whether err is one of the gate's backpressure
// rejections (shed or queue timeout) — the cases a web tier should map to
// 503 with Retry-After.
func IsOverload(err error) bool {
	return errors.Is(err, ErrShed) || errors.Is(err, ErrQueueTimeout)
}

// RetryAfter is the configured client backoff hint. Zero on a nil gate.
func (g *Gate) RetryAfter() time.Duration {
	if g == nil {
		return 0
	}
	return g.retryAfter
}

// GateStats is a point-in-time snapshot of the gate's counters.
type GateStats struct {
	Workers  int   // configured worker-slot count
	Queue    int   // configured wait-queue bound
	InFlight int   // slots held right now
	Queued   int   // requests waiting right now
	Admitted int64 // requests that got a slot
	Shed     int64 // immediate rejections (queue full)
	TimedOut int64 // rejections after QueueTimeout in queue
	Canceled int64 // contexts that ended while queued
	Done     int64 // released slots
}

// Stats returns current admission counters; zero value on a nil gate.
func (g *Gate) Stats() GateStats {
	if g == nil {
		return GateStats{}
	}
	return GateStats{
		Workers:  g.workers,
		Queue:    int(g.queue),
		InFlight: len(g.slots),
		Queued:   int(g.queued.Load()),
		Admitted: g.admitted.Load(),
		Shed:     g.shed.Load(),
		TimedOut: g.timedOut.Load(),
		Canceled: g.canceled.Load(),
		Done:     g.completed.Load(),
	}
}
