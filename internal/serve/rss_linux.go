//go:build linux

package serve

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// PeakRSSBytes reads the process's high-water resident set size (VmHWM)
// from /proc/self/status, in bytes; 0 when unavailable. The load harness
// and the eval benchmarks share this one implementation so every recorded
// memory number means the same thing.
func PeakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
