package core

import (
	"fmt"
	"testing"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

func TestMaxPopsTermination(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	o.MaxPops = 5 // absurdly small: the search must still terminate cleanly
	answers, stats, err := f.s.SearchStats([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pops > 5 {
		t.Errorf("pops = %d, exceeds cap", stats.Pops)
	}
	// Whatever was generated before the cap is still returned, ranked.
	for i, a := range answers {
		if a.Rank != i+1 {
			t.Errorf("rank %d at position %d", a.Rank, i)
		}
	}
}

func TestMetadataNodeLimit(t *testing.T) {
	// A table with many rows matched via metadata must be truncated at the
	// limit and the truncation reported.
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name:    "gizmo",
		Columns: []sqldb.Column{{Name: "label", Type: sqldb.TypeText}},
	})
	for i := 0; i < 50; i++ {
		db.Insert("gizmo", []sqldb.Value{sqldb.Text(fmt.Sprintf("item %d", i))})
	}
	f := newFixture(t, db)
	o := DefaultOptions()
	o.MetadataNodeLimit = 10
	_, stats, err := f.s.SearchStats([]string{"gizmo"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.MetadataTruncated {
		t.Error("truncation not reported")
	}
	if stats.MatchedNodes[0] != 10 {
		t.Errorf("matched = %v, want 10", stats.MatchedNodes)
	}
	// Unlimited: all 50.
	o.MetadataNodeLimit = 0
	_, stats, err = f.s.SearchStats([]string{"gizmo"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MatchedNodes[0] != 50 || stats.MetadataTruncated {
		t.Errorf("unlimited stats = %+v", stats)
	}
}

// TestMetadataNodeLimitExactUnderDuplicatePostings locks in the fix for
// the cap being budgeted against len(m.Nodes) *including duplicates*: a
// Lookup whose posting list repeats nodes must still admit exactly
// MetadataNodeLimit metadata nodes, no more.
func TestMetadataNodeLimitExactUnderDuplicatePostings(t *testing.T) {
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name:    "gizmo",
		Columns: []sqldb.Column{{Name: "label", Type: sqldb.TypeText}},
	})
	for i := 0; i < 30; i++ {
		db.Insert("gizmo", []sqldb.Value{sqldb.Text(fmt.Sprintf("item %d", i))})
	}
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	tid := g.TableID("gizmo")
	// Hand-built index: "gizmo" matches nodes 0 and 1 as data — each
	// posted three times — and the whole table via metadata.
	lo, _ := g.NodesOfTable(tid)
	ix := index.NewFromPostings(g.NumNodes(), map[string][]graph.NodeID{
		"gizmo": {lo, lo, lo, lo + 1, lo + 1, lo + 1},
	}, map[string][]int32{
		"gizmo": {tid},
	})
	s := NewSearcher(g, ix)
	o := DefaultOptions()
	o.MetadataNodeLimit = 5
	_, stats, err := s.SearchStats([]string{"gizmo"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.MetadataTruncated {
		t.Error("truncation not reported")
	}
	// Exactly 2 distinct data nodes + 5 admitted metadata nodes. The old
	// budget (len(set) >= len(m.Nodes)+limit = 11) would have admitted 9.
	if got := stats.MatchedNodes[0]; got != 7 {
		t.Errorf("matched = %d, want 7 (2 data + 5 metadata)", got)
	}
}

func TestMaxCombosTruncationReported(t *testing.T) {
	// A star: one hub referenced by many spokes, half matching "left",
	// half "right". Every spoke pair meets at the hub, so the cross
	// product at the hub is |left| x |right|.
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name:       "hub",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.TypeInt, NotNull: true}},
		PrimaryKey: []string{"id"},
	})
	db.CreateTable(&sqldb.TableSchema{
		Name: "spoke",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "hub", Type: sqldb.TypeInt},
			{Name: "tag", Type: sqldb.TypeText},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []sqldb.ForeignKey{{Column: "hub", RefTable: "hub"}},
	})
	db.Insert("hub", []sqldb.Value{sqldb.Int(1)})
	for i := 0; i < 30; i++ {
		tag := "left"
		if i%2 == 1 {
			tag = "right"
		}
		db.Insert("spoke", []sqldb.Value{sqldb.Int(int64(i)), sqldb.Int(1), sqldb.Text(tag)})
	}
	f := newFixture(t, db)
	o := DefaultOptions()
	o.MaxCombosPerVisit = 5
	o.TopK = 100
	o.HeapSize = 10
	_, stats, err := f.s.SearchStats([]string{"left", "right"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CombosTruncated {
		t.Error("combo truncation not reported")
	}
}

func TestStopsAfterTopKEmitted(t *testing.T) {
	// The bib fixture yields exactly two valid soumen-sunita answers (the
	// deeper trees all share a single root child and are pruned); with
	// TopK=1 and a heap of 1 the second distinct result forces the first
	// emission and the search must stop there.
	f := newBibFixture(t)
	o := defaultBibOptions()
	o.TopK = 1
	o.HeapSize = 1
	answers, stats, err := f.s.SearchStats([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Errorf("answers = %d, want exactly TopK", len(answers))
	}
	// Early termination: nowhere near a full multi-iterator exhaustion.
	if stats.Pops >= f.g.NumNodes()*2 {
		t.Errorf("pops = %d; early termination failed", stats.Pops)
	}
}

func TestWithDefaultsDoesNotMutateCaller(t *testing.T) {
	o := &Options{TopK: 5}
	_ = o.withDefaultsInto(new(Options))
	if o.HeapSize != 0 || o.MaxPops != 0 {
		t.Errorf("caller options mutated: %+v", o)
	}
}
