package core

// The pooled per-term frontier behind BatchedStrategy. A term's frontier
// is the set of shortest-path iterators rooted at its keyword nodes; for
// a fixed origin over an immutable graph snapshot that expansion is a
// pure function, so its settling order can be memoized once and replayed
// by every later query that shares the term (the Mragyati observation:
// keyword-search servers win by sharing per-term work across requests).
//
// The pool hands an iterator to at most one query at a time — checkout
// removes it from the pool, checkin returns it — so queries never share
// mutable state; a concurrent query that wants the same origin while it
// is checked out simply builds a fresh arena iterator. Replay yields
// exactly the pop sequence and paths a fresh run would (see the memo
// fields on sspIterator), which keeps the batched strategy
// answer-identical to the backward one.

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/banksdb/banks/internal/graph"
)

// DefaultFrontierPoolIters is the pool capacity used when a caller
// enables frontier pooling without choosing a size. Each pooled iterator
// holds dense node-indexed arrays (24 bytes/node) plus its memoized
// trail (16 bytes per settled node) and checkpointed heap, so a deeply
// expanded iterator costs up to ~40 bytes/node and the cap bounds
// resident memory to roughly DefaultFrontierPoolIters × 40 × NumNodes
// bytes worst case.
const DefaultFrontierPoolIters = 32

// frontierPool caches warm, memoized per-origin iterators across queries.
// The pool can outlive the engine snapshot it was created for: carrying
// it across a non-structural publish (pure text mutations — identical
// node set, arcs and prestige) keeps the memoized expansions warm, while
// a structural publish bumps the pool's generation, clearing it and
// rejecting late checkins from queries still pinned to the old snapshot.
// A nil pool is valid and disables pooling.
type frontierPool struct {
	mu    sync.Mutex
	gen   uint64 // structural generation; entries are valid within one gen
	iters map[graph.NodeID]*sspIterator
	order []graph.NodeID // LRU order, oldest first
	max   int
	reuse atomic.Int64
}

func newFrontierPool(maxIters int) *frontierPool {
	if maxIters <= 0 {
		return nil
	}
	return &frontierPool{iters: make(map[graph.NodeID]*sspIterator, maxIters), max: maxIters}
}

// bumpGen advances the pool's structural generation and empties it; the
// cumulative reuse counter persists. Returns the new generation. Safe on
// nil (returns 0).
func (p *frontierPool) bumpGen() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gen++
	p.iters = make(map[graph.NodeID]*sspIterator, p.max)
	p.order = p.order[:0]
	return p.gen
}

// generation returns the pool's current structural generation. Safe on
// nil (0).
func (p *frontierPool) generation() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen
}

// checkout removes and returns the pooled iterator for origin, or nil.
// gen is the caller's snapshot generation: a mismatch (the pool moved on
// structurally) is a miss. The caller owns the iterator until checkin.
func (p *frontierPool) checkout(origin graph.NodeID, gen uint64) *sspIterator {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gen != gen {
		return nil
	}
	it, ok := p.iters[origin]
	if !ok {
		return nil
	}
	delete(p.iters, origin)
	p.dropFromOrder(origin)
	p.reuse.Add(1)
	return it
}

// checkin parks a memoized iterator for future queries on its origin,
// evicting the least recently used entry when full. A checkin whose gen
// no longer matches the pool's (a structural publish happened while the
// query ran) is dropped — its memoized trail describes a graph that no
// longer exists. An incoming iterator whose origin is already pooled
// keeps whichever trail is longer (the deeper expansion serves more
// replays).
func (p *frontierPool) checkin(it *sspIterator, gen uint64) {
	if p == nil || it == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gen != gen {
		return
	}
	if prev, ok := p.iters[it.origin]; ok {
		if len(prev.trail) >= len(it.trail) {
			return
		}
		p.iters[it.origin] = it
		return
	}
	for len(p.iters) >= p.max && len(p.order) > 0 {
		oldest := p.order[0]
		p.order = p.order[1:]
		delete(p.iters, oldest)
	}
	p.iters[it.origin] = it
	p.order = append(p.order, it.origin)
}

func (p *frontierPool) dropFromOrder(origin graph.NodeID) {
	for i, n := range p.order {
		if n == origin {
			p.order = append(p.order[:i], p.order[i+1:]...)
			return
		}
	}
}

// reuses returns how many checkouts were served warm. Safe on nil.
func (p *frontierPool) reuses() int64 {
	if p == nil {
		return 0
	}
	return p.reuse.Load()
}

// size returns the resident iterator count (tests).
func (p *frontierPool) size() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.iters)
}

// BatchedStrategy is the concurrency-oriented executor: term resolution
// goes through the single-flight admission layer (concurrent identical
// lookups coalesce on top of the match cache) and per-term frontiers are
// checked out of the shared pool of memoized iterators, so a burst of
// queries sharing terms shares resolution and expansion work instead of
// repeating it. The expansion algorithm is the same backward expanding
// search, so answers (and execution traces) are identical to
// BackwardStrategy.
type BatchedStrategy struct{}

// Name implements Strategy.
func (BatchedStrategy) Name() string { return StrategyBatched }

func (BatchedStrategy) resolver(s *Searcher) termResolver {
	if s.flight == nil {
		return cacheResolver{s}
	}
	return flightResolver{s}
}

func (BatchedStrategy) run(ctx context.Context, ex *exec) ([]*Answer, error) {
	if len(ex.sets) == 1 {
		return searchSingleTerm(ctx, ex)
	}
	return runExpansion(ctx, ex, &frontierSource{ar: ex.ar, pool: ex.s.frontiers, gen: ex.s.frontierGen, stats: ex.stats})
}

// frontierSource serves the expansion loop from the shared frontier pool,
// falling back to fresh arena iterators (memoized, so they can be pooled
// afterwards) on a pool miss.
type frontierSource struct {
	ar    *searchArena
	pool  *frontierPool
	gen   uint64 // the query's snapshot generation
	stats *Stats
}

func (f *frontierSource) acquire(g graph.View, origin graph.NodeID) *sspIterator {
	if it := f.pool.checkout(origin, f.gen); it != nil {
		f.stats.FrontierReused++
		it.rewind()
		return it
	}
	it := f.ar.newIterator(g, origin)
	if f.pool != nil {
		it.memo = true
	}
	return it
}

// releaseAll parks the query's memoized iterators in the pool and detaches
// them from the arena's origin records so the arena does not reclaim them.
// Non-memoized iterators (pool disabled) stay with the arena.
func (f *frontierSource) releaseAll(ar *searchArena) {
	if f.pool == nil {
		return
	}
	for i := range ar.origins {
		if it := ar.origins[i].it; it != nil && it.memo {
			ar.origins[i].it = nil
			f.pool.checkin(it, f.gen)
		}
	}
}
