package core

// BackwardStrategy: the paper's Figure 3 backward expanding search, as the
// default executor of the staged pipeline. The expansion loop itself
// (runExpansion) is shared with BatchedStrategy — the strategies differ
// only in where per-origin iterator state comes from (iterSource) and how
// terms were resolved — which is what makes the two paths answer-identical
// by construction.

import (
	"context"
	"math/bits"
	"slices"

	"github.com/banksdb/banks/internal/graph"
)

// BackwardStrategy is the §3 backward expanding search: one fresh
// shortest-path iterator per keyword node, checked out of the query's
// arena. It is the default when Options.Strategy is empty.
type BackwardStrategy struct{}

// Name implements Strategy.
func (BackwardStrategy) Name() string { return StrategyBackward }

func (BackwardStrategy) resolver(s *Searcher) termResolver { return cacheResolver{s} }

func (BackwardStrategy) run(ctx context.Context, ex *exec) ([]*Answer, error) {
	if len(ex.sets) == 1 {
		return searchSingleTerm(ctx, ex)
	}
	return runExpansion(ctx, ex, arenaSource{ex.ar})
}

// iterSource hands the expansion loop its per-origin shortest-path
// iterators. arenaSource builds them fresh from the arena's free list;
// the batched strategy's frontierSource serves memoized iterators from
// the shared pool.
type iterSource interface {
	acquire(g graph.View, origin graph.NodeID) *sspIterator
	// releaseAll returns strategy-owned iterators after the expansion;
	// arena-owned iterators are reclaimed by the arena itself.
	releaseAll(ar *searchArena)
}

// arenaSource is the per-query path: iterators live and die with the
// arena.
type arenaSource struct{ ar *searchArena }

func (a arenaSource) acquire(g graph.View, origin graph.NodeID) *sspIterator {
	return a.ar.newIterator(g, origin)
}

func (arenaSource) releaseAll(*searchArena) {}

// searchSingleTerm handles n=1 exactly: any tree with edges has a
// single-child root and is discarded by the §3 rule, so the answers are
// precisely the matching nodes, ranked by relevance (EScore of a node tree
// is 1, so prestige separates them — the "Mohan" anecdote). Answers flow
// through the same fixed-size output heap as the multi-term path, so the
// emission contract (approximate relevance order, governed by HeapSize) is
// identical for both.
func searchSingleTerm(ctx context.Context, ex *exec) ([]*Answer, error) {
	s, o, stats := ex.s, ex.o, ex.stats
	em := newEmitter(ex.ar, o, stats, ex.cb)
	for i, n := range ex.sets[0] {
		if em.stopped || len(em.emitted) >= o.TopK {
			break
		}
		if i&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if ex.excluded[s.g.TableOf(n)] {
			stats.ExcludedRoots++
			continue
		}
		a := ex.ar.newAnswer()
		a.Root = n
		ex.ar.comboBuf = append(ex.ar.comboBuf[:0], n)
		a.TermNodes = ex.ar.copyNodes(ex.ar.comboBuf)
		scoreAnswer(a, s.g, o.Score)
		stats.Generated++
		em.offer(a)
	}
	em.drain()
	return em.finish(), nil
}

// runExpansion is the backward expanding search of Figure 3, shared by
// both built-in strategies. cb (via the emitter), when non-nil, observes
// answers at emission time and may cancel the search. The expansion loop
// polls ctx every cancelCheckMask+1 iterator pops so a canceled context or
// an expired deadline stops a long-running expansion promptly; the
// context's error is then returned and no answers are.
func runExpansion(ctx context.Context, ex *exec, src iterSource) ([]*Answer, error) {
	s, ar, o, stats := ex.s, ex.ar, ex.o, ex.stats
	n := len(ex.sets)
	defer src.releaseAll(ar)

	// A node may match several terms; it gets one iterator and one origin
	// slot whose bitmask records the terms it matched.
	ar.beginOrigins(n)
	for ti, set := range ex.sets {
		for _, node := range set {
			oi := ar.originIndex(node)
			if oi < 0 {
				oi = ar.addOrigin(node)
			}
			ar.originTerms(oi)[ti/64] |= 1 << uint(ti%64)
		}
	}
	ih := ar.ih[:0]
	for i := range ar.origins {
		// A term can match an enormous node set; one iterator (plus a
		// store-faulting Peek) per origin makes this loop long enough to
		// need its own cancellation polling.
		if i&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				ar.ih = ih
				return nil, err
			}
		}
		it := src.acquire(s.g, ar.origins[i].node)
		ar.origins[i].it = it
		if _, d, ok := it.Peek(); ok {
			ih = append(ih, iterEntry{it: it, next: d, key: nodeKey(s.g, ar.origins[i].node)})
		}
	}
	ih.init()

	// Per-visited-node term lists (v.L_i in the pseudocode) live in the
	// arena's chunked dense storage.
	ar.beginVisits()

	em := newEmitter(ar, o, stats, ex.cb)

	if cap(ar.comboBuf) < n {
		ar.comboBuf = make([]graph.NodeID, n)
	}
	combo := ar.comboBuf[:n]

	// The cross-product generator lives in the arena (genState) rather
	// than in closures: the recursive `rec` closure this used to build was
	// one heap allocation per generate call — per pop per matched term —
	// and is the difference between a steady state that allocates and one
	// that does not.
	gs := &ar.gsBuf
	*gs = genState{ex: ex, em: em, n: n, combo: combo}

	budget := o.Budget
	for len(ih) > 0 && len(em.emitted) < o.TopK && !em.stopped {
		// Budget checks. Pops and arcs are deterministic per
		// (snapshot, query) — cold or memoized-replay runs truncate at the
		// same point — so budget-killed answers are reproducible. Bytes
		// faulted is engine-global and polled at the cancel cadence: a
		// safety valve against cold-store blowups, not exact accounting.
		if stats.Pops >= budget.MaxPops {
			stats.BudgetExhausted = true
			stats.BudgetReason = "pops"
			break
		}
		if budget.MaxArcsScanned > 0 && stats.ArcsScanned >= budget.MaxArcsScanned {
			stats.BudgetExhausted = true
			stats.BudgetReason = "arcs"
			break
		}
		if stats.Pops&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				ar.ih = ih
				return nil, err
			}
			if budget.MaxBytesFaulted > 0 && ex.bytesFaulted() >= budget.MaxBytesFaulted {
				stats.BudgetExhausted = true
				stats.BudgetReason = "bytes"
				break
			}
		}
		entry := &ih[0]
		v, _, ok := entry.it.Next()
		if !ok {
			ih.popTop()
			continue
		}
		stats.Pops++
		stats.ArcsScanned += entry.it.lastArcs
		originNode := entry.it.origin
		if _, d, more := entry.it.Peek(); more {
			entry.next = d
			ih.siftDown(0)
		} else {
			ih.popTop()
		}
		oi := ar.originIndex(originNode)
		for wi, word := range ar.originTerms(oi) {
			for word != 0 {
				ti := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				gs.generate(v, originNode, ti)
			}
		}
	}
	em.drain()
	ar.ih = ih
	return em.finish(), nil
}

// genState is the arena-resident frame of the cross-product generator
// (CrossProduct in the Figure 3 pseudocode): all new connection trees
// rooted at v that use origin as the term-ti leaf.
type genState struct {
	ex    *exec
	em    *emitter
	n     int
	combo []graph.NodeID

	// per-generate-call state
	v            graph.NodeID
	ti           int
	l            [][]graph.NodeID
	rootExcluded bool
	produced     int
}

func (gs *genState) generate(v graph.NodeID, origin graph.NodeID, ti int) {
	ex := gs.ex
	gs.v = v
	gs.ti = ti
	gs.l = ex.ar.nodeLists(v, gs.n)
	gs.rootExcluded = ex.excluded[ex.s.g.TableOf(v)]
	gs.produced = 0
	gs.combo[ti] = origin
	gs.rec(0)
	gs.l[ti] = append(gs.l[ti], origin)
}

// rec walks the cross product of {origin} with the other term lists.
func (gs *genState) rec(term int) bool {
	ex := gs.ex
	if term == gs.n {
		if gs.produced >= ex.o.MaxCombosPerVisit {
			ex.stats.CombosTruncated = true
			return false
		}
		gs.produced++
		ex.stats.Generated++
		if gs.rootExcluded {
			ex.stats.ExcludedRoots++
			return true
		}
		if a := ex.s.buildAnswer(ex.ar, gs.v, gs.combo, ex.o, ex.stats); a != nil {
			gs.em.offer(a)
		}
		return true
	}
	if term == gs.ti {
		return gs.rec(term + 1)
	}
	if len(gs.l[term]) == 0 {
		return false
	}
	for _, other := range gs.l[term] {
		gs.combo[term] = other
		if !gs.rec(term + 1) {
			return false
		}
	}
	return true
}

// buildAnswer materializes the connection tree rooted at v whose term-i
// leaf is combo[i], as the union of the per-iterator shortest paths. The
// paper's pseudocode treats this union as a tree, but two shortest paths
// can diverge and reconverge, giving a node two parents; we splice instead:
// once a path reaches a node already in the tree, the existing route from
// the root is reused and the walk continues from that node. Every leaf
// stays reachable from the root and the result is a genuine tree. Returns
// nil for trees pruned by the single-child-root rule.
func (s *Searcher) buildAnswer(ar *searchArena, v graph.NodeID, combo []graph.NodeID, o *Options, stats *Stats) *Answer {
	gen := ar.bumpMark()
	ar.mark[v] = gen
	edges := ar.edgeBuf[:0]
	scratch := ar.scratchEdges
	for _, origin := range combo {
		oi := ar.originIndex(origin)
		if oi < 0 || ar.origins[oi].it == nil {
			ar.scratchEdges = scratch[:0]
			ar.edgeBuf = edges[:0]
			return nil
		}
		scratch = ar.origins[oi].it.PathEdges(v, scratch[:0])
		for _, e := range scratch {
			if ar.mark[e.To] == gen {
				continue // reuse the existing root->e.To route
			}
			ar.mark[e.To] = gen
			edges = append(edges, e)
		}
	}
	ar.scratchEdges = scratch[:0]
	ar.edgeBuf = edges
	if len(edges) > 0 && rootChildren(ar, v, edges) == 1 {
		stats.SingleChildRoots++
		return nil
	}
	// Canonical (table, rid) edge order: sibling order in rendered trees
	// and the FP summation order of the weight — hence the exact score —
	// come out identical under any node numbering.
	slices.SortFunc(edges, func(x, y TreeEdge) int {
		kxf, kyf := nodeKey(s.g, x.From), nodeKey(s.g, y.From)
		if kxf != kyf {
			if kxf < kyf {
				return -1
			}
			return 1
		}
		kxt, kyt := nodeKey(s.g, x.To), nodeKey(s.g, y.To)
		switch {
		case kxt < kyt:
			return -1
		case kxt > kyt:
			return 1
		}
		return 0
	})
	a := ar.newAnswer()
	a.Root = v
	a.Edges = ar.copyEdges(edges)
	a.TermNodes = ar.copyNodes(combo)
	for _, e := range edges {
		a.Weight += e.W
	}
	scoreAnswer(a, s.g, o.Score)
	return a
}

// rootChildren counts the distinct direct children of the root over the
// arena's mark set; the §3 rule discards trees whose root has exactly one
// child, since the smaller tree obtained by removing the root is also
// generated. (Answer.rootChildren does the same with a map; this is the
// allocation-free hot-path form.)
func rootChildren(ar *searchArena, root graph.NodeID, edges []TreeEdge) int {
	gen := ar.bumpMark()
	c := 0
	for _, e := range edges {
		if e.From == root && ar.mark[e.To] != gen {
			ar.mark[e.To] = gen
			c++
		}
	}
	return c
}
