package core_test

// Golden tests pinning the exact output of the backward expanding search.
// The answer lists (tree signatures, scores, weights) and the execution
// trace (iterator pops, candidate trees generated) for a fixed query mix
// over the deterministic DBLP and TPC-D generators are rendered to text
// and compared against committed goldens, so any refactor of the executor
// can prove the default strategy answer-identical — and any strategy can
// be checked against the same files.
//
// Regenerate with:
//
//	go test ./internal/core -run TestGolden -update-golden

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the search golden files")

// goldenQuery is one pinned query: terms plus the request/option knobs that
// change the execution path (qualified, prefix, metadata caps).
type goldenQuery struct {
	name      string
	terms     []string
	qualified bool
	prefix    bool
	metaLimit int // MetadataNodeLimit override when > 0
}

func dblpGoldenQueries() []goldenQuery {
	return []goldenQuery{
		{name: "coauthor-pair", terms: []string{"soumen", "sunita"}},
		{name: "common-coauthor", terms: []string{"seltzer", "sunita"}},
		{name: "author-and-title", terms: []string{"gray", "concepts"}},
		{name: "title-words", terms: []string{"mining", "surprising", "patterns"}},
		{name: "single-author", terms: []string{"mohan"}},
		{name: "single-title-word", terms: []string{"transaction"}},
		{name: "three-coauthors", terms: []string{"soumen", "sunita", "byron"}},
		{name: "metadata-mixed", terms: []string{"author", "sunita"}, metaLimit: 200},
		{name: "prefix", terms: []string{"surpris"}, prefix: true},
		{name: "qualified", terms: []string{"author:soumen", "author:sunita"}, qualified: true},
	}
}

func tpcdGoldenQueries() []goldenQuery {
	return []goldenQuery{
		{name: "two-term", terms: []string{"steel", "widget"}},
		{name: "three-term", terms: []string{"premium", "steel", "widget"}},
		{name: "economy", terms: []string{"economy", "widget"}},
		{name: "single-term", terms: []string{"supplier"}},
		{name: "metadata-mixed", terms: []string{"lineitem", "steel"}, metaLimit: 100},
		{name: "prefix", terms: []string{"wid"}, prefix: true},
	}
}

// runGoldenSuite renders the full result of the query mix under the given
// strategy name ("" = default) into the comparison-stable text form.
func runGoldenSuite(t *testing.T, db *sqldb.Database, s *core.Searcher, queries []goldenQuery, baseOpts *core.Options, strategy string) string {
	t.Helper()
	var b strings.Builder
	for _, q := range queries {
		o := *baseOpts
		o.Strategy = strategy
		if q.metaLimit > 0 {
			o.MetadataNodeLimit = q.metaLimit
		}
		req := core.Request{Terms: q.terms, Qualified: q.qualified, Prefix: q.prefix, DB: db}
		answers, stats, err := s.Query(context.Background(), req, &o, nil)
		if err != nil {
			t.Fatalf("query %s: %v", q.name, err)
		}
		fmt.Fprintf(&b, "query %s terms=%v qualified=%v prefix=%v\n", q.name, q.terms, q.qualified, q.prefix)
		fmt.Fprintf(&b, "  stats pops=%d generated=%d duplicates=%d singleChildRoots=%d matched=%v\n",
			stats.Pops, stats.Generated, stats.Duplicates, stats.SingleChildRoots, stats.MatchedNodes)
		for _, a := range answers {
			fmt.Fprintf(&b, "  %2d. sig=%s score=%.9f escore=%.9f nscore=%.9f weight=%.9f terms=%v\n",
				a.Rank, a.Signature(), a.Score, a.EScore, a.NScore, a.Weight, a.TermNodes)
		}
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden): %v", path, err)
	}
	if !bytes.Equal(want, []byte(got)) {
		t.Errorf("output differs from golden %s\n--- got ---\n%s--- want ---\n%s", path, got, string(want))
	}
}

func buildGoldenFixture(t *testing.T, db *sqldb.Database) (*graph.Graph, *index.Index, *core.Searcher) {
	t.Helper()
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	return g, ix, core.NewSearcher(g, ix)
}

func dblpGoldenOptions() *core.Options {
	o := core.DefaultOptions()
	o.ExcludedRootTables = []string{"Writes", "Cites"}
	return o
}

// TestGoldenBackwardDBLP pins the default (backward expanding) strategy on
// the DBLP generator.
func TestGoldenBackwardDBLP(t *testing.T) {
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	_, _, s := buildGoldenFixture(t, db)
	got := runGoldenSuite(t, db, s, dblpGoldenQueries(), dblpGoldenOptions(), "")
	checkGolden(t, "golden_backward_dblp.txt", got)
}

// TestGoldenBackwardTPCD pins the default strategy on the TPC-D generator.
func TestGoldenBackwardTPCD(t *testing.T) {
	db, err := datagen.BuildTPCD(datagen.SmallTPCD())
	if err != nil {
		t.Fatal(err)
	}
	_, _, s := buildGoldenFixture(t, db)
	got := runGoldenSuite(t, db, s, tpcdGoldenQueries(), core.DefaultOptions(), "")
	checkGolden(t, "golden_backward_tpcd.txt", got)
}

// newBatchedSearcher assembles the full batched stack: match cache,
// single-flight admission, frontier pool.
func newBatchedSearcher(t *testing.T, db *sqldb.Database) *core.Searcher {
	t.Helper()
	_, _, s := buildGoldenFixture(t, db)
	return s.WithMatchCache(index.NewMatchCache(4 << 20)).
		WithFlightGroup(index.NewFlightGroup()).
		WithFrontierPool(core.DefaultFrontierPoolIters)
}

// TestGoldenBatchedDBLP asserts the batched strategy (single-flight
// resolution + pooled memoized frontiers) is answer- and trace-identical
// to the pinned backward output — on a cold pool and again on a warm one,
// where every expansion replays from the memoized trails.
func TestGoldenBatchedDBLP(t *testing.T) {
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	s := newBatchedSearcher(t, db)
	cold := runGoldenSuite(t, db, s, dblpGoldenQueries(), dblpGoldenOptions(), core.StrategyBatched)
	checkGolden(t, "golden_backward_dblp.txt", cold)
	warm := runGoldenSuite(t, db, s, dblpGoldenQueries(), dblpGoldenOptions(), core.StrategyBatched)
	checkGolden(t, "golden_backward_dblp.txt", warm)
}

// TestGoldenBatchedTPCD is TestGoldenBatchedDBLP on the TPC-D generator.
func TestGoldenBatchedTPCD(t *testing.T) {
	db, err := datagen.BuildTPCD(datagen.SmallTPCD())
	if err != nil {
		t.Fatal(err)
	}
	s := newBatchedSearcher(t, db)
	cold := runGoldenSuite(t, db, s, tpcdGoldenQueries(), core.DefaultOptions(), core.StrategyBatched)
	checkGolden(t, "golden_backward_tpcd.txt", cold)
	warm := runGoldenSuite(t, db, s, tpcdGoldenQueries(), core.DefaultOptions(), core.StrategyBatched)
	checkGolden(t, "golden_backward_tpcd.txt", warm)
}
