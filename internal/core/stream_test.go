package core

import (
	"errors"
	"testing"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/sqldb"
)

func TestSearchStreamMatchesBatchOrder(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	batch, err := f.s.Search([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []*Answer
	err = f.s.SearchStream([]string{"soumen", "sunita"}, o, func(a *Answer) bool {
		streamed = append(streamed, a)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i].Signature() != batch[i].Signature() {
			t.Errorf("position %d differs", i)
		}
		if streamed[i].Rank != i+1 {
			t.Errorf("streamed rank = %d at position %d", streamed[i].Rank, i)
		}
	}
}

func TestSearchStreamEarlyCancel(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	count := 0
	err := f.s.SearchStream([]string{"soumen", "sunita"}, o, func(a *Answer) bool {
		count++
		return false // cancel after the first answer
	})
	if !errors.Is(err, ErrStopped) {
		t.Errorf("err = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Errorf("callback ran %d times, want 1", count)
	}
}

func TestSearchStreamSingleTerm(t *testing.T) {
	f := newBibFixture(t)
	var got []*Answer
	err := f.s.SearchStream([]string{"mohan"}, defaultBibOptions(), func(a *Answer) bool {
		got = append(got, a)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("streamed %d single-term answers", len(got))
	}
}

// smithFixture builds a deterministic two-author dataset for the
// single-term heap-contract tests: "zed smith" (no papers, prestige 0) is
// inserted before "amy smith" (two papers, prestige 2), so the posting
// order for "smith" is zed, amy while relevance order is amy, zed.
func smithFixture(t *testing.T) *fixture {
	t.Helper()
	db := sqldb.NewDatabase()
	mustCreate := func(s *sqldb.TableSchema) {
		t.Helper()
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate(&sqldb.TableSchema{
		Name: "Author",
		Columns: []sqldb.Column{
			{Name: "AuthorId", Type: sqldb.TypeText, NotNull: true},
			{Name: "AuthorName", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"AuthorId"},
	})
	mustCreate(&sqldb.TableSchema{
		Name: "Paper",
		Columns: []sqldb.Column{
			{Name: "PaperId", Type: sqldb.TypeText, NotNull: true},
			{Name: "Title", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"PaperId"},
	})
	mustCreate(&sqldb.TableSchema{
		Name: "Writes",
		Columns: []sqldb.Column{
			{Name: "AuthorId", Type: sqldb.TypeText},
			{Name: "PaperId", Type: sqldb.TypeText},
		},
		ForeignKeys: []sqldb.ForeignKey{
			{Column: "AuthorId", RefTable: "Author"},
			{Column: "PaperId", RefTable: "Paper"},
		},
	})
	rows := [][]string{{"Zed", "zed smith"}, {"Amy", "amy smith"}}
	for _, r := range rows {
		if _, err := db.Insert("Author", []sqldb.Value{sqldb.Text(r[0]), sqldb.Text(r[1])}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{"P1", "P2"} {
		if _, err := db.Insert("Paper", []sqldb.Value{sqldb.Text(p), sqldb.Text("a title")}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Insert("Writes", []sqldb.Value{sqldb.Text("Amy"), sqldb.Text(p)}); err != nil {
			t.Fatal(err)
		}
	}
	return newFixture(t, db)
}

// TestSearchStreamSingleTermHeapContract pins the single-term emission
// contract to the shared output heap: a heap of 1 emits in generation
// (posting) order, a heap large enough to buffer everything emits in exact
// relevance order — the same behaviour the multi-term path documents.
func TestSearchStreamSingleTermHeapContract(t *testing.T) {
	f := smithFixture(t)
	zed := f.node(t, "Author", "Zed")
	amy := f.node(t, "Author", "Amy")

	stream := func(heapSize int) []graph.NodeID {
		o := DefaultOptions()
		o.HeapSize = heapSize
		var roots []graph.NodeID
		if err := f.s.SearchStream([]string{"smith"}, o, func(a *Answer) bool {
			roots = append(roots, a.Root)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return roots
	}

	// HeapSize 1: the second offer forces the first (and only) buffered
	// answer out, so emission follows posting order — zed before amy even
	// though amy scores higher.
	got := stream(1)
	if len(got) != 2 || got[0] != zed || got[1] != amy {
		t.Errorf("heap=1 emission = %v, want [zed=%d amy=%d]", got, zed, amy)
	}
	// A heap that holds all candidates emits best-first: exact order.
	got = stream(20)
	if len(got) != 2 || got[0] != amy || got[1] != zed {
		t.Errorf("heap=20 emission = %v, want [amy=%d zed=%d]", got, amy, zed)
	}
}

// TestSearchStreamSingleTermMatchesBatch asserts the streaming and batch
// single-term paths share one pipeline: same answers, same order, same
// ranks, for any heap size.
func TestSearchStreamSingleTermMatchesBatch(t *testing.T) {
	f := smithFixture(t)
	for _, heapSize := range []int{1, 2, 20} {
		o := DefaultOptions()
		o.HeapSize = heapSize
		batch, err := f.s.Search([]string{"smith"}, o)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []*Answer
		if err := f.s.SearchStream([]string{"smith"}, o, func(a *Answer) bool {
			streamed = append(streamed, a)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(streamed) != len(batch) {
			t.Fatalf("heap=%d: streamed %d, batch %d", heapSize, len(streamed), len(batch))
		}
		for i := range batch {
			if streamed[i].Root != batch[i].Root || streamed[i].Rank != i+1 {
				t.Errorf("heap=%d position %d: stream root %d rank %d, batch root %d",
					heapSize, i, streamed[i].Root, streamed[i].Rank, batch[i].Root)
			}
		}
	}
}

func TestSearchStreamErrors(t *testing.T) {
	f := newBibFixture(t)
	if err := f.s.SearchStream(nil, nil, func(*Answer) bool { return true }); err == nil {
		t.Error("empty query should error")
	}
	// No matches: no callback, no error.
	calls := 0
	if err := f.s.SearchStream([]string{"xyzzy"}, nil, func(*Answer) bool { calls++; return true }); err != nil {
		t.Errorf("no-match stream errored: %v", err)
	}
	if calls != 0 {
		t.Errorf("callback ran %d times for no matches", calls)
	}
}
