package core

import (
	"errors"
	"testing"
)

func TestSearchStreamMatchesBatchOrder(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	batch, err := f.s.Search([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []*Answer
	err = f.s.SearchStream([]string{"soumen", "sunita"}, o, func(a *Answer) bool {
		streamed = append(streamed, a)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i].Signature() != batch[i].Signature() {
			t.Errorf("position %d differs", i)
		}
		if streamed[i].Rank != i+1 {
			t.Errorf("streamed rank = %d at position %d", streamed[i].Rank, i)
		}
	}
}

func TestSearchStreamEarlyCancel(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	count := 0
	err := f.s.SearchStream([]string{"soumen", "sunita"}, o, func(a *Answer) bool {
		count++
		return false // cancel after the first answer
	})
	if !errors.Is(err, ErrStopped) {
		t.Errorf("err = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Errorf("callback ran %d times, want 1", count)
	}
}

func TestSearchStreamSingleTerm(t *testing.T) {
	f := newBibFixture(t)
	var got []*Answer
	err := f.s.SearchStream([]string{"mohan"}, defaultBibOptions(), func(a *Answer) bool {
		got = append(got, a)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("streamed %d single-term answers", len(got))
	}
}

func TestSearchStreamErrors(t *testing.T) {
	f := newBibFixture(t)
	if err := f.s.SearchStream(nil, nil, func(*Answer) bool { return true }); err == nil {
		t.Error("empty query should error")
	}
	// No matches: no callback, no error.
	calls := 0
	if err := f.s.SearchStream([]string{"xyzzy"}, nil, func(*Answer) bool { calls++; return true }); err != nil {
		t.Errorf("no-match stream errored: %v", err)
	}
	if calls != 0 {
		t.Errorf("callback ran %d times for no matches", calls)
	}
}
