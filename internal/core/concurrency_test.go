package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSearchesShareOneSearcher locks in the pooled-arena safety
// claim: one Searcher over one graph/index snapshot must serve many
// goroutines at once (run under -race), each getting exactly the answers a
// serial run produces.
func TestConcurrentSearchesShareOneSearcher(t *testing.T) {
	f := newBibFixture(t)
	queries := [][]string{
		{"soumen", "sunita"},
		{"soumen", "sunita", "byron"},
		{"mohan"},
		{"mohan", "aries"},
		{"surprising", "sunita"},
		{"author"},
	}
	o := defaultBibOptions()

	// Serial reference run.
	want := make([][]string, len(queries))
	for qi, q := range queries {
		answers, err := f.s.Search(q, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range answers {
			want[qi] = append(want[qi], fmt.Sprintf("%s|%.9f", a.Signature(), a.Score))
		}
	}

	const goroutines = 16
	const rounds = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (gi + r) % len(queries)
				answers, err := f.s.Search(queries[qi], o)
				if err != nil {
					errs <- err
					return
				}
				if len(answers) != len(want[qi]) {
					errs <- fmt.Errorf("query %v: %d answers, want %d", queries[qi], len(answers), len(want[qi]))
					return
				}
				for i, a := range answers {
					got := fmt.Sprintf("%s|%.9f", a.Signature(), a.Score)
					if got != want[qi][i] {
						errs <- fmt.Errorf("query %v answer %d: %s, want %s", queries[qi], i, got, want[qi][i])
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentStreamAndBatch mixes streaming (with early cancellation)
// and batch searches across goroutines; cancellation must release arenas
// cleanly so later queries see no stale state.
func TestConcurrentStreamAndBatch(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	var wg sync.WaitGroup
	for gi := 0; gi < 8; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				if (gi+r)%2 == 0 {
					count := 0
					_ = f.s.SearchStream([]string{"soumen", "sunita"}, o, func(*Answer) bool {
						count++
						return count < 1 // cancel after the first answer
					})
				} else {
					if _, err := f.s.Search([]string{"mohan", "aries"}, o); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
}
