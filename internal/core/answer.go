package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/banksdb/banks/internal/graph"
)

// TreeEdge is one directed edge of a connection tree, pointing away from
// the root (information node) toward a keyword leaf.
type TreeEdge struct {
	From, To graph.NodeID
	W        float64
}

// Answer is one query result: a connection tree rooted at the information
// node, with a directed path from the root to a node matching each search
// term (§2). A single-node answer (a tuple matching every term) has no
// edges.
type Answer struct {
	// Root is the information node.
	Root graph.NodeID
	// Edges are the tree edges, directed away from the root. Edges shared
	// between root-to-leaf paths appear once.
	Edges []TreeEdge
	// TermNodes[i] is the node that matched search term i.
	TermNodes []graph.NodeID
	// Weight is the sum of edge weights (the §2.1 tree weight).
	Weight float64
	// EScore, NScore and Score are the §2.3 relevance components.
	EScore, NScore, Score float64
	// Rank is the 1-based position in the emitted result list.
	Rank int
}

// Nodes returns the distinct nodes of the tree, root first.
func (a *Answer) Nodes() []graph.NodeID {
	seen := map[graph.NodeID]bool{a.Root: true}
	out := []graph.NodeID{a.Root}
	add := func(n graph.NodeID) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, e := range a.Edges {
		add(e.From)
		add(e.To)
	}
	for _, n := range a.TermNodes {
		add(n)
	}
	return out
}

// ContainsNode reports whether n is part of the tree.
func (a *Answer) ContainsNode(n graph.NodeID) bool {
	if a.Root == n {
		return true
	}
	for _, e := range a.Edges {
		if e.From == n || e.To == n {
			return true
		}
	}
	return false
}

// rootChildren counts the distinct direct children of the root; the
// algorithm discards trees whose root has exactly one child, since the
// smaller tree obtained by removing the root is also generated (§3).
func (a *Answer) rootChildren() int {
	seen := make(map[graph.NodeID]bool)
	for _, e := range a.Edges {
		if e.From == a.Root {
			seen[e.To] = true
		}
	}
	return len(seen)
}

// Signature is the canonical identity of the tree *modulo edge direction*:
// the paper treats trees whose undirected versions coincide as duplicates
// ("they represent the same result, except with different information
// nodes"). Two answers with equal signatures are the same result.
func (a *Answer) Signature() string {
	if len(a.Edges) == 0 {
		return "n" + strconv.Itoa(int(a.Root))
	}
	und := make([]string, len(a.Edges))
	for i, e := range a.Edges {
		lo, hi := e.From, e.To
		if lo > hi {
			lo, hi = hi, lo
		}
		und[i] = strconv.Itoa(int(lo)) + "-" + strconv.Itoa(int(hi))
	}
	sort.Strings(und)
	return strings.Join(und, ",")
}

// sigHash is the integer form of Signature used on the hot path: a 64-bit
// order-independent hash of the undirected edge set (of the root alone for
// edgeless answers). Commutative combination over per-edge mixes makes
// sorting unnecessary; a collision would merge two distinct trees, with
// probability ~2^-64 per candidate pair — negligible against the few
// thousand candidates a query generates.
func (a *Answer) sigHash() uint64 {
	if len(a.Edges) == 0 {
		return mix64(uint64(uint32(a.Root)) | 1<<40)
	}
	h := mix64(uint64(len(a.Edges)))
	for _, e := range a.Edges {
		lo, hi := e.From, e.To
		if lo > hi {
			lo, hi = hi, lo
		}
		h += mix64(uint64(uint32(lo))<<32 | uint64(uint32(hi)))
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap bijective mixer with good
// avalanche behaviour.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// String renders a compact representation for logs and tests.
func (a *Answer) String() string {
	return fmt.Sprintf("answer{root=%d edges=%d w=%.3g score=%.4f}", a.Root, len(a.Edges), a.Weight, a.Score)
}

// Describe renders the tree as an indented listing using the graph's table
// names; the richer rendering with attribute values lives in the public
// banks package, which has database access.
func (a *Answer) Describe(g graph.View) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%d] (score %.4f)\n", g.TableNameOf(a.Root), g.RIDOf(a.Root), a.Score)
	children := make(map[graph.NodeID][]TreeEdge)
	for _, e := range a.Edges {
		children[e.From] = append(children[e.From], e)
	}
	var walk func(n graph.NodeID, depth int)
	walk = func(n graph.NodeID, depth int) {
		for _, e := range children[n] {
			fmt.Fprintf(&b, "%s-> %s[%d] (w=%.3g)\n", strings.Repeat("  ", depth+1), g.TableNameOf(e.To), g.RIDOf(e.To), e.W)
			walk(e.To, depth+1)
		}
	}
	walk(a.Root, 0)
	return b.String()
}
