package core

import (
	"math/rand"
	"testing"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/sqldb"
)

// lineDB builds nodes connected in a line: t(1) <- t(2) <- ... via an FK
// chain, giving forward arcs i->i-1 (weight 1) and scaled backward arcs.
func lineDB(t *testing.T, n int) *fixture {
	t.Helper()
	db := sqldb.NewDatabase()
	if _, err := db.CreateTable(&sqldb.TableSchema{
		Name: "t",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "prev", Type: sqldb.TypeInt},
			{Name: "label", Type: sqldb.TypeText},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []sqldb.ForeignKey{{Column: "prev", RefTable: "t"}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		prev := sqldb.Null()
		if i > 1 {
			prev = sqldb.Int(int64(i - 1))
		}
		if _, err := db.Insert("t", []sqldb.Value{sqldb.Int(int64(i)), prev, sqldb.Text("node")}); err != nil {
			t.Fatal(err)
		}
	}
	return newFixture(t, db)
}

func TestSSPIteratorNondecreasingDistances(t *testing.T) {
	f := lineDB(t, 12)
	origin := f.g.NodeOf("t", 0) // node with id 1, the chain's sink
	it := newSSPIterator(f.g, origin)
	prev := -1.0
	count := 0
	for {
		n, d, ok := it.Next()
		if !ok {
			break
		}
		if d < prev {
			t.Fatalf("distance decreased: %v after %v", d, prev)
		}
		prev = d
		count++
		if n == origin && d != 0 {
			t.Error("origin should be at distance 0")
		}
	}
	if count != 12 {
		t.Errorf("visited %d nodes, want 12 (chain is fully connected)", count)
	}
}

func TestSSPIteratorDistancesMatchForwardPaths(t *testing.T) {
	f := lineDB(t, 6)
	origin := f.g.NodeOf("t", 0)
	it := newSSPIterator(f.g, origin)
	for {
		_, _, ok := it.Next()
		if !ok {
			break
		}
	}
	// Node i (rid i) has forward path of i unit arcs to the origin.
	for rid := 1; rid < 6; rid++ {
		n := f.g.NodeOf("t", sqldb.RID(rid))
		d, ok := it.Dist(n)
		if !ok {
			t.Fatalf("node %d unsettled", rid)
		}
		if d != float64(rid) {
			t.Errorf("dist(rid=%d) = %v, want %d", rid, d, rid)
		}
	}
}

func TestSSPIteratorPathEdges(t *testing.T) {
	f := lineDB(t, 5)
	origin := f.g.NodeOf("t", 0)
	it := newSSPIterator(f.g, origin)
	for {
		if _, _, ok := it.Next(); !ok {
			break
		}
	}
	far := f.g.NodeOf("t", 4)
	edges := it.PathEdges(far, nil)
	if len(edges) != 4 {
		t.Fatalf("path edges = %d, want 4", len(edges))
	}
	// The path must consist of real forward arcs chained far -> origin.
	cur := far
	for _, e := range edges {
		if e.From != cur {
			t.Fatalf("path discontinuity at %d", cur)
		}
		if w := f.g.ArcWeight(e.From, e.To); w != e.W {
			t.Errorf("edge %d->%d weight %v, graph %v", e.From, e.To, e.W, w)
		}
		cur = e.To
	}
	if cur != origin {
		t.Errorf("path ends at %d, want origin %d", cur, origin)
	}
	// Origin's own path is empty.
	if got := it.PathEdges(origin, nil); len(got) != 0 {
		t.Errorf("origin path = %v", got)
	}
}

func TestSSPIteratorPeekConsistency(t *testing.T) {
	f := lineDB(t, 8)
	origin := f.g.NodeOf("t", 0)
	it := newSSPIterator(f.g, origin)
	for {
		pn, pd, pok := it.Peek()
		n, d, ok := it.Next()
		if pok != ok {
			t.Fatal("peek/next disagree on exhaustion")
		}
		if !ok {
			break
		}
		if pn != n || pd != d {
			t.Fatalf("peek (%d,%v) != next (%d,%v)", pn, pd, n, d)
		}
	}
	if _, _, ok := it.Peek(); ok {
		t.Error("exhausted iterator should peek nothing")
	}
}

func TestSSPIteratorAgainstSteinerOracle(t *testing.T) {
	// On the bibliographic fixture, the iterator's settled distances must
	// match an independent multi-source Dijkstra (ForwardDistances from
	// internal/steiner is structured differently; here we recompute via
	// brute-force Bellman-Ford).
	f := newBibFixture(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3; trial++ {
		origin := graph.NodeID(rng.Intn(f.g.NumNodes()))
		it := newSSPIterator(f.g, origin)
		for {
			if _, _, ok := it.Next(); !ok {
				break
			}
		}
		want := bellmanFordToOrigin(f.g, origin)
		for v := 0; v < f.g.NumNodes(); v++ {
			d, ok := it.Dist(graph.NodeID(v))
			if !ok {
				if want[v] >= 0 {
					t.Errorf("node %d unreached but oracle says %v", v, want[v])
				}
				continue
			}
			if want[v] < 0 || absF(d-want[v]) > 1e-9 {
				t.Errorf("dist(%d) = %v, oracle %v", v, d, want[v])
			}
		}
	}
}

// bellmanFordToOrigin computes, for every node v, the weight of the
// shortest forward path v -> ... -> origin; -1 when unreachable.
func bellmanFordToOrigin(g *graph.Graph, origin graph.NodeID) []float64 {
	const inf = 1e18
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = inf
	}
	dist[origin] = 0
	for iter := 0; iter < g.NumNodes(); iter++ {
		changed := false
		for u := 0; u < g.NumNodes(); u++ {
			for _, e := range g.Out(graph.NodeID(u)) {
				if d := dist[e.To] + e.W; d < dist[u] {
					dist[u] = d
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range dist {
		if dist[i] >= inf {
			dist[i] = -1
		}
	}
	return dist
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestAnswerNodesAndDescribe(t *testing.T) {
	f := newBibFixture(t)
	answers, err := f.s.Search([]string{"soumen", "sunita"}, defaultBibOptions())
	if err != nil || len(answers) == 0 {
		t.Fatalf("answers=%d err=%v", len(answers), err)
	}
	a := answers[0]
	nodes := a.Nodes()
	if len(nodes) != len(a.Edges)+1 {
		t.Errorf("Nodes() = %d, want %d", len(nodes), len(a.Edges)+1)
	}
	if nodes[0] != a.Root {
		t.Error("root should come first")
	}
	desc := a.Describe(f.g)
	if desc == "" || len(desc) < 10 {
		t.Errorf("Describe = %q", desc)
	}
}
