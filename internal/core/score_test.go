package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/sqldb"
)

func TestEdgeScoreLinearAndLog(t *testing.T) {
	if got := edgeScore(2, 1, false); got != 2 {
		t.Errorf("linear = %v", got)
	}
	if got := edgeScore(2, 2, false); got != 1 {
		t.Errorf("normalized min edge = %v, want 1", got)
	}
	if got := edgeScore(1, 1, true); math.Abs(got-1) > 1e-12 {
		t.Errorf("log of min edge = %v, want log2(2)=1", got)
	}
	if got := edgeScore(3, 1, true); math.Abs(got-2) > 1e-12 {
		t.Errorf("log2(1+3) = %v, want 2", got)
	}
	// Degenerate wmin guards.
	if got := edgeScore(5, 0, false); got != 5 {
		t.Errorf("wmin=0 fallback = %v", got)
	}
}

func TestEdgeScoreMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		w1, w2 := float64(a)+1, float64(b)+1
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		for _, logScale := range []bool{false, true} {
			if edgeScore(w1, 1, logScale) > edgeScore(w2, 1, logScale)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeScoreRangeAndMonotone(t *testing.T) {
	for _, logScale := range []bool{false, true} {
		prev := -1.0
		for w := 0.0; w <= 100; w += 10 {
			s := nodeScore(w, 100, logScale)
			if s < 0 || s > 1 {
				t.Errorf("nodeScore(%v) = %v out of [0,1]", w, s)
			}
			if s < prev {
				t.Errorf("nodeScore not monotone at %v (log=%v)", w, logScale)
			}
			prev = s
		}
		if got := nodeScore(100, 100, logScale); math.Abs(got-1) > 1e-12 {
			t.Errorf("max node score = %v, want 1", got)
		}
	}
	if nodeScore(5, 0, false) != 0 {
		t.Error("wmax=0 should score 0")
	}
}

func TestCombineScores(t *testing.T) {
	add := ScoreOptions{Lambda: 0.25}
	if got := CombineScores(0.8, 0.4, add); math.Abs(got-(0.75*0.8+0.25*0.4)) > 1e-12 {
		t.Errorf("additive = %v", got)
	}
	mul := ScoreOptions{Lambda: 0.5, Combine: Multiplicative}
	if got := CombineScores(0.64, 0.25, mul); math.Abs(got-0.64*0.5) > 1e-12 {
		t.Errorf("multiplicative = %v", got) // 0.64 * 0.25^0.5 = 0.32
	}
	// λ=0 multiplicative ignores node score entirely (0^0 guard).
	if got := CombineScores(0.5, 0, ScoreOptions{Lambda: 0, Combine: Multiplicative}); got != 0.5 {
		t.Errorf("λ=0 multiplicative = %v", got)
	}
	// λ=1 additive is pure node score.
	if got := CombineScores(0.9, 0.3, ScoreOptions{Lambda: 1}); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("λ=1 additive = %v", got)
	}
}

func TestCombineScoresInUnitIntervalProperty(t *testing.T) {
	f := func(e, n, l uint8) bool {
		es := float64(e) / 255
		ns := float64(n) / 255
		lam := float64(l) / 255
		for _, comb := range []Combination{Additive, Multiplicative} {
			s := CombineScores(es, ns, ScoreOptions{Lambda: lam, Combine: comb})
			if s < -1e-12 || s > 1+1e-12 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreAnswerLeafCounting(t *testing.T) {
	// A node matching two search terms is counted once per term (§2.3).
	f := newBibFixture(t)
	p := f.node(t, "Paper", "ChakrabartiSD98")
	a1 := &Answer{Root: p, TermNodes: []graph.NodeID{p, p}}
	scoreAnswer(a1, f.g, ScoreOptions{Lambda: 1})
	// NScore = avg over {root, leaf, leaf} = nodeScore(p) since all equal.
	want := nodeScore(f.g.Prestige(p), f.g.MaxNodeWeight(), false)
	if math.Abs(a1.NScore-want) > 1e-12 {
		t.Errorf("NScore = %v, want %v", a1.NScore, want)
	}
	// Mixed root and leaves: average.
	leaf := f.node(t, "Author", "SoumenC")
	a2 := &Answer{Root: p, TermNodes: []graph.NodeID{leaf}}
	scoreAnswer(a2, f.g, ScoreOptions{Lambda: 1})
	wantAvg := (nodeScore(f.g.Prestige(p), f.g.MaxNodeWeight(), false) +
		nodeScore(f.g.Prestige(leaf), f.g.MaxNodeWeight(), false)) / 2
	if math.Abs(a2.NScore-wantAvg) > 1e-12 {
		t.Errorf("NScore = %v, want %v", a2.NScore, wantAvg)
	}
}

func TestScoreAnswerSingleNodeEScoreIsOne(t *testing.T) {
	f := newBibFixture(t)
	n := f.node(t, "Author", "MohanC")
	a := &Answer{Root: n, TermNodes: []graph.NodeID{n}}
	scoreAnswer(a, f.g, DefaultScoreOptions())
	if a.EScore != 1 {
		t.Errorf("EScore of single-node answer = %v, want 1", a.EScore)
	}
}

func TestCombinationString(t *testing.T) {
	if Additive.String() != "additive" || Multiplicative.String() != "multiplicative" {
		t.Error("Combination.String broken")
	}
}

func TestDefaultScoreOptions(t *testing.T) {
	o := DefaultScoreOptions()
	if o.Lambda != 0.2 || !o.EdgeLog || o.NodeLog || o.Combine != Additive {
		t.Errorf("defaults = %+v", o)
	}
}

// TestScoreOrderingUnderPrestige validates the §2.1 claim end to end: with
// node weights enabled, higher-prestige roots win among equal-proximity
// answers.
func TestScoreOrderingUnderPrestige(t *testing.T) {
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name: "item",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "name", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"id"},
	})
	db.CreateTable(&sqldb.TableSchema{
		Name: "ref",
		Columns: []sqldb.Column{
			{Name: "item", Type: sqldb.TypeInt},
		},
		ForeignKeys: []sqldb.ForeignKey{{Column: "item", RefTable: "item"}},
	})
	db.Insert("item", []sqldb.Value{sqldb.Int(1), sqldb.Text("gadget popular")})
	db.Insert("item", []sqldb.Value{sqldb.Int(2), sqldb.Text("gadget obscure")})
	for i := 0; i < 5; i++ {
		db.Insert("ref", []sqldb.Value{sqldb.Int(1)})
	}
	db.Insert("ref", []sqldb.Value{sqldb.Int(2)})
	f := newFixture(t, db)
	answers, err := f.s.Search([]string{"gadget"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %d", len(answers))
	}
	if f.g.RIDOf(answers[0].Root) != 0 {
		t.Error("popular item should rank first")
	}
	if answers[0].Score <= answers[1].Score {
		t.Error("scores should strictly order by prestige")
	}
}
