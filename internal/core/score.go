// Package core implements the primary contribution of the paper: the
// backward expanding search algorithm (Section 3, Figure 3) that finds
// connection trees — rooted directed trees whose leaves cover the query
// keywords — incrementally, and the relevance model of Section 2.3 that
// ranks them by combining proximity (edge score) with prestige (node
// score).
package core

import (
	"math"

	"github.com/banksdb/banks/internal/graph"
)

// Combination selects how the overall edge score and node score merge into
// one relevance value (§2.3).
type Combination uint8

// Combination modes.
const (
	// Additive combines as (1-λ)·EScore + λ·NScore.
	Additive Combination = iota
	// Multiplicative combines as EScore · NScore^λ.
	Multiplicative
)

func (c Combination) String() string {
	if c == Multiplicative {
		return "multiplicative"
	}
	return "additive"
}

// ScoreOptions are the §2.3 ranking parameters. There are eight
// combinations (EdgeLog × NodeLog × Combination); the paper evaluated five
// of them after discarding log-scaling with multiplication and found
// λ=0.2 with edge log-scaling best.
type ScoreOptions struct {
	// Lambda weighs node score against edge score: 0 ranks purely by
	// proximity, 1 purely by prestige.
	Lambda float64
	// EdgeLog applies log2(1+x) damping to normalized edge weights,
	// taming the heavy backward edges of popular hub nodes.
	EdgeLog bool
	// NodeLog applies logarithmic damping to node weights (the "IDF"
	// style depression the paper mentions).
	NodeLog bool
	// Combine selects additive or multiplicative combination.
	Combine Combination
}

// DefaultScoreOptions returns the setting the paper's evaluation found
// best: λ=0.2 with log scaling of edge weights, additive combination.
func DefaultScoreOptions() ScoreOptions {
	return ScoreOptions{Lambda: 0.2, EdgeLog: true}
}

// edgeScore is the normalized score of one edge: weight over w_min,
// optionally log-damped. Both forms are >= 1 for w >= w_min... the log form
// is log2(1 + w/wmin) which is >= 1 for w >= wmin, keeping tree size
// penalized under either scaling.
func edgeScore(w, wmin float64, logScale bool) float64 {
	if wmin <= 0 {
		wmin = 1
	}
	x := w / wmin
	if logScale {
		return math.Log2(1 + x)
	}
	return x
}

// nodeScore is the normalized score of one node in [0,1]: weight over
// w_max, or log2(1+w)/log2(1+wmax) when log-scaled. A graph with no
// references at all (wmax = 0) scores every node 0.
func nodeScore(w, wmax float64, logScale bool) float64 {
	if wmax <= 0 {
		return 0
	}
	if logScale {
		return math.Log2(1+w) / math.Log2(1+wmax)
	}
	return w / wmax
}

// scoreAnswer fills EScore, NScore and Score of a on graph g per §2.3:
//
//   - EScore = 1 / (1 + Σ_e edgeScore(e)), in [0,1]; larger trees score
//     lower.
//   - NScore = the average node score over the root plus every keyword
//     leaf, counting a node once per search term it matched.
//   - Score = the λ-combination of the two.
func scoreAnswer(a *Answer, g graph.View, opts ScoreOptions) {
	wmin := g.MinEdgeWeight()
	var esum float64
	for _, e := range a.Edges {
		esum += edgeScore(e.W, wmin, opts.EdgeLog)
	}
	a.EScore = 1 / (1 + esum)

	wmax := g.MaxNodeWeight()
	total := nodeScore(g.Prestige(a.Root), wmax, opts.NodeLog)
	count := 1
	for _, leaf := range a.TermNodes {
		total += nodeScore(g.Prestige(leaf), wmax, opts.NodeLog)
		count++
	}
	a.NScore = total / float64(count)

	a.Score = CombineScores(a.EScore, a.NScore, opts)
}

// CombineScores merges an edge score and node score per the options; it is
// exported for the evaluation harness, which reports both combination
// modes.
func CombineScores(escore, nscore float64, opts ScoreOptions) float64 {
	if opts.Combine == Multiplicative {
		if opts.Lambda == 0 {
			return escore
		}
		return escore * math.Pow(nscore, opts.Lambda)
	}
	return (1-opts.Lambda)*escore + opts.Lambda*nscore
}
