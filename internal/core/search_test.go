package core

import (
	"math"
	"testing"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

// fixture bundles a database with its graph, index and searcher.
type fixture struct {
	db *sqldb.Database
	g  *graph.Graph
	ix *index.Index
	s  *Searcher
}

func newFixture(t *testing.T, db *sqldb.Database) *fixture {
	t.Helper()
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{db: db, g: g, ix: ix, s: NewSearcher(g, ix)}
}

// newBibFixture builds the Figure 1 fragment: ChakrabartiSD98 written by
// Soumen, Sunita and Byron, plus a second Soumen–Sunita paper, a prolific
// author (Mohan) and citation structure for prestige.
func newBibFixture(t *testing.T) *fixture {
	t.Helper()
	db := sqldb.NewDatabase()
	mk := func(s *sqldb.TableSchema) {
		t.Helper()
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	mk(&sqldb.TableSchema{
		Name: "Paper",
		Columns: []sqldb.Column{
			{Name: "PaperId", Type: sqldb.TypeText, NotNull: true},
			{Name: "PaperName", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"PaperId"},
	})
	mk(&sqldb.TableSchema{
		Name: "Author",
		Columns: []sqldb.Column{
			{Name: "AuthorId", Type: sqldb.TypeText, NotNull: true},
			{Name: "AuthorName", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"AuthorId"},
	})
	mk(&sqldb.TableSchema{
		Name: "Writes",
		Columns: []sqldb.Column{
			{Name: "AuthorId", Type: sqldb.TypeText},
			{Name: "PaperId", Type: sqldb.TypeText},
		},
		ForeignKeys: []sqldb.ForeignKey{
			{Column: "AuthorId", RefTable: "Author"},
			{Column: "PaperId", RefTable: "Paper"},
		},
	})
	mk(&sqldb.TableSchema{
		Name: "Cites",
		Columns: []sqldb.Column{
			{Name: "Citing", Type: sqldb.TypeText},
			{Name: "Cited", Type: sqldb.TypeText},
		},
		ForeignKeys: []sqldb.ForeignKey{
			{Column: "Citing", RefTable: "Paper", Weight: 2},
			{Column: "Cited", RefTable: "Paper", Weight: 2},
		},
	})
	authors := map[string]string{
		"SoumenC": "Soumen Chakrabarti",
		"SunitaS": "Sunita Sarawagi",
		"ByronD":  "Byron Dom",
		"MohanC":  "C. Mohan",
		"MohanA":  "Mohan Ahuja",
	}
	for id, name := range authors {
		if _, err := db.Insert("Author", []sqldb.Value{sqldb.Text(id), sqldb.Text(name)}); err != nil {
			t.Fatal(err)
		}
	}
	papers := map[string]string{
		"ChakrabartiSD98": "Mining Surprising Patterns Using Temporal Description Length",
		"SecondPaper":     "Enhanced Rules For Surprising Sequences",
		"Aries":           "ARIES Recovery Method",
		"Aries2":          "ARIES IM Concurrency",
		"AhujaPaper":      "Flooding Protocols",
	}
	for id, name := range papers {
		if _, err := db.Insert("Paper", []sqldb.Value{sqldb.Text(id), sqldb.Text(name)}); err != nil {
			t.Fatal(err)
		}
	}
	writes := [][2]string{
		{"SoumenC", "ChakrabartiSD98"}, {"SunitaS", "ChakrabartiSD98"}, {"ByronD", "ChakrabartiSD98"},
		{"SoumenC", "SecondPaper"}, {"SunitaS", "SecondPaper"},
		{"MohanC", "Aries"}, {"MohanC", "Aries2"},
		{"MohanA", "AhujaPaper"},
	}
	for _, w := range writes {
		if _, err := db.Insert("Writes", []sqldb.Value{sqldb.Text(w[0]), sqldb.Text(w[1])}); err != nil {
			t.Fatal(err)
		}
	}
	// Citations give ARIES prestige.
	cites := [][2]string{
		{"Aries2", "Aries"}, {"ChakrabartiSD98", "Aries"}, {"SecondPaper", "Aries"},
	}
	for _, c := range cites {
		if _, err := db.Insert("Cites", []sqldb.Value{sqldb.Text(c[0]), sqldb.Text(c[1])}); err != nil {
			t.Fatal(err)
		}
	}
	return newFixture(t, db)
}

func (f *fixture) node(t *testing.T, table string, pk string) graph.NodeID {
	t.Helper()
	tbl := f.db.Table(table)
	rid := tbl.LookupPK([]sqldb.Value{sqldb.Text(pk)})
	if rid < 0 {
		t.Fatalf("no %s row %q", table, pk)
	}
	n := f.g.NodeOf(table, rid)
	if n == graph.NoNode {
		t.Fatalf("no node for %s/%s", table, pk)
	}
	return n
}

func defaultBibOptions() *Options {
	o := DefaultOptions()
	o.ExcludedRootTables = []string{"Writes", "Cites"}
	return o
}

func TestCoauthorQueryFindsPaperRoot(t *testing.T) {
	f := newBibFixture(t)
	answers, err := f.s.Search([]string{"soumen", "sunita"}, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	// The two coauthored papers should be the top answers, each rooted at
	// the paper with paths to both author tuples through Writes.
	want := map[graph.NodeID]bool{
		f.node(t, "Paper", "ChakrabartiSD98"): true,
		f.node(t, "Paper", "SecondPaper"):     true,
	}
	for i := 0; i < 2 && i < len(answers); i++ {
		if !want[answers[i].Root] {
			t.Errorf("answer %d rooted at %s[%d], want a coauthored paper",
				i+1, f.g.TableNameOf(answers[i].Root), f.g.RIDOf(answers[i].Root))
		}
	}
	a := answers[0]
	soumen := f.node(t, "Author", "SoumenC")
	sunita := f.node(t, "Author", "SunitaS")
	if !a.ContainsNode(soumen) || !a.ContainsNode(sunita) {
		t.Errorf("top answer should contain both author nodes: %s", a.Describe(f.g))
	}
	// Figure 1(B): paper -> writes -> author on both sides = 4 edges.
	if len(a.Edges) != 4 {
		t.Errorf("edges = %d, want 4\n%s", len(a.Edges), a.Describe(f.g))
	}
}

func TestThreeKeywordQuery(t *testing.T) {
	f := newBibFixture(t)
	answers, err := f.s.Search([]string{"soumen", "sunita", "byron"}, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	if got, want := answers[0].Root, f.node(t, "Paper", "ChakrabartiSD98"); got != want {
		t.Errorf("top root = %s[%d], want ChakrabartiSD98",
			f.g.TableNameOf(got), f.g.RIDOf(got))
	}
	if len(answers[0].Edges) != 6 {
		t.Errorf("edges = %d, want 6 (paper + 3 writes + 3 authors)", len(answers[0].Edges))
	}
}

func TestSingleTermPrestigeRanking(t *testing.T) {
	f := newBibFixture(t)
	// "mohan" matches C. Mohan (2 papers -> prestige 2) and Mohan Ahuja
	// (1 paper -> prestige 1): the §5.1 "Mohan" anecdote.
	answers, err := f.s.Search([]string{"mohan"}, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(answers))
	}
	if answers[0].Root != f.node(t, "Author", "MohanC") {
		t.Errorf("top answer should be C. Mohan")
	}
	if answers[0].Rank != 1 || answers[1].Rank != 2 {
		t.Errorf("ranks = %d, %d", answers[0].Rank, answers[1].Rank)
	}
	if len(answers[0].Edges) != 0 {
		t.Errorf("single-term answers must be single nodes")
	}
}

func TestAnswersAreValidConnectionTrees(t *testing.T) {
	f := newBibFixture(t)
	queries := [][]string{
		{"soumen", "sunita"},
		{"soumen", "byron"},
		{"mohan", "aries"},
		{"surprising", "sunita"},
		{"soumen", "sunita", "byron"},
	}
	for _, q := range queries {
		answers, err := f.s.Search(q, defaultBibOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range answers {
			assertConnectionTree(t, f.g, a)
		}
	}
}

// assertConnectionTree checks the §2 answer invariants: edges exist in the
// graph with correct weights, every non-root node has exactly one parent,
// the root has none, no cycles, and every term node is reachable from the
// root.
func assertConnectionTree(t *testing.T, g *graph.Graph, a *Answer) {
	t.Helper()
	parent := make(map[graph.NodeID]graph.NodeID)
	children := make(map[graph.NodeID][]graph.NodeID)
	for _, e := range a.Edges {
		if w := g.ArcWeight(e.From, e.To); w != e.W {
			t.Errorf("edge %d->%d weight %v, graph says %v", e.From, e.To, e.W, w)
		}
		if p, dup := parent[e.To]; dup {
			t.Errorf("node %d has two parents (%d and %d): not a tree", e.To, p, e.From)
		}
		parent[e.To] = e.From
		children[e.From] = append(children[e.From], e.To)
	}
	if _, hasParent := parent[a.Root]; hasParent {
		t.Errorf("root %d has a parent", a.Root)
	}
	// Reachability from root.
	reach := map[graph.NodeID]bool{a.Root: true}
	stack := []graph.NodeID{a.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range children[n] {
			if !reach[c] {
				reach[c] = true
				stack = append(stack, c)
			}
		}
	}
	for i, leaf := range a.TermNodes {
		if !reach[leaf] {
			t.Errorf("term %d node %d not reachable from root", i, leaf)
		}
	}
	if len(reach) != len(a.Edges)+1 {
		t.Errorf("tree has %d reachable nodes but %d edges: disconnected or cyclic", len(reach), len(a.Edges))
	}
	var wsum float64
	for _, e := range a.Edges {
		wsum += e.W
	}
	if math.Abs(wsum-a.Weight) > 1e-9 {
		t.Errorf("weight = %v, edges sum to %v", a.Weight, wsum)
	}
	if a.Score < 0 || a.Score > 1+1e-9 {
		t.Errorf("score %v out of [0,1]", a.Score)
	}
}

func TestNoDuplicateAnswersModuloDirection(t *testing.T) {
	f := newBibFixture(t)
	answers, err := f.s.Search([]string{"soumen", "sunita"}, DefaultOptions()) // no exclusions
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, a := range answers {
		sig := a.Signature()
		if seen[sig] {
			t.Errorf("duplicate answer signature %q", sig)
		}
		seen[sig] = true
	}
}

func TestExcludedRootTables(t *testing.T) {
	f := newBibFixture(t)
	answers, err := f.s.Search([]string{"soumen", "sunita"}, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range answers {
		tbl := f.g.TableNameOf(a.Root)
		if tbl == "Writes" || tbl == "Cites" {
			t.Errorf("answer rooted at excluded table %s", tbl)
		}
	}
}

func TestUnmatchedTermBehaviour(t *testing.T) {
	f := newBibFixture(t)
	// RequireAllTerms (default): no answers.
	answers, err := f.s.Search([]string{"soumen", "xyzzy"}, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 0 {
		t.Errorf("expected no answers, got %d", len(answers))
	}
	// Relaxed: the unmatched term is dropped.
	o := defaultBibOptions()
	o.RequireAllTerms = false
	answers, stats, err := f.s.SearchStats([]string{"soumen", "xyzzy"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Error("relaxed search should return soumen answers")
	}
	if stats.TermsDropped != 1 {
		t.Errorf("TermsDropped = %d", stats.TermsDropped)
	}
}

func TestEmptyQueryErrors(t *testing.T) {
	f := newBibFixture(t)
	if _, err := f.s.Search(nil, nil); err == nil {
		t.Error("nil terms should error")
	}
	if _, err := f.s.Search([]string{"  ", ""}, nil); err == nil {
		t.Error("blank terms should error")
	}
}

func TestMetadataQuery(t *testing.T) {
	f := newBibFixture(t)
	// "author" matches the Author relation metadata: every author tuple is
	// relevant (§2.3 example).
	answers, stats, err := f.s.SearchStats([]string{"author"}, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.MatchedNodes) != 1 || stats.MatchedNodes[0] != 5 {
		t.Errorf("matched = %v, want [5]", stats.MatchedNodes)
	}
	if len(answers) != 5 {
		t.Errorf("answers = %d, want 5", len(answers))
	}
	for _, a := range answers {
		if f.g.TableNameOf(a.Root) != "Author" {
			t.Errorf("metadata answer in table %s", f.g.TableNameOf(a.Root))
		}
	}
}

func TestMetadataCombinedWithData(t *testing.T) {
	f := newBibFixture(t)
	// "paper surprising": metadata term + title word; connection trees
	// should link a paper tuple to papers titled "surprising". The minimal
	// answer is the matching paper itself (root = leaf for both terms).
	answers, err := f.s.Search([]string{"paper", "surprising"}, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	top := answers[0]
	if len(top.Edges) != 0 {
		t.Errorf("top answer should be a single paper node matching both terms:\n%s", top.Describe(f.g))
	}
	if f.g.TableNameOf(top.Root) != "Paper" {
		t.Errorf("top root table = %s", f.g.TableNameOf(top.Root))
	}
}

func TestTopKLimit(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	o.TopK = 1
	answers, err := f.s.Search([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Errorf("answers = %d, want 1", len(answers))
	}
}

func TestHeapSizeOneStillWorks(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	o.HeapSize = 1
	answers, err := f.s.Search([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Error("heap size 1 should still produce answers")
	}
}

func TestLargerHeapSortsBetter(t *testing.T) {
	f := newBibFixture(t)
	// With a large heap, emitted order must be non-increasing in score
	// when all results pass through the heap.
	o := defaultBibOptions()
	o.HeapSize = 1000
	answers, err := f.s.Search([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(answers); i++ {
		if answers[i].Score > answers[i-1].Score+1e-12 {
			t.Errorf("answers out of order at %d: %v then %v", i, answers[i-1].Score, answers[i].Score)
		}
	}
}

func TestRescoreChangesOrder(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	o.HeapSize = 100
	answers, err := f.s.Search([]string{"mohan", "aries"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) < 2 {
		t.Skip("need at least 2 answers")
	}
	proximityOnly := f.s.Rescore(answers, ScoreOptions{Lambda: 0, EdgeLog: true})
	prestigeOnly := f.s.Rescore(answers, ScoreOptions{Lambda: 1})
	if len(proximityOnly) != len(answers) || len(prestigeOnly) != len(answers) {
		t.Fatal("rescore changed answer count")
	}
	for i := 1; i < len(proximityOnly); i++ {
		if proximityOnly[i].Score > proximityOnly[i-1].Score+1e-12 {
			t.Error("rescored answers not sorted")
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	f := newBibFixture(t)
	_, stats, err := f.s.SearchStats([]string{"soumen", "sunita"}, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pops == 0 || stats.Generated == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if len(stats.Terms) != 2 || len(stats.MatchedNodes) != 2 {
		t.Errorf("terms stats = %+v", stats)
	}
}

func TestTermMatchingMultipleNodesCrossProduct(t *testing.T) {
	f := newBibFixture(t)
	// "aries" matches two papers; "mohan" two authors. All combinations
	// should be considered; C. Mohan wrote both ARIES papers.
	o := defaultBibOptions()
	o.HeapSize = 100
	answers, err := f.s.Search([]string{"aries", "mohan"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) < 2 {
		t.Fatalf("answers = %d, want >= 2", len(answers))
	}
	// Both top answers should link C. Mohan to an ARIES paper directly
	// through a Writes tuple (root = writes excluded, so root is the
	// paper: paper -> writes -> author is 1 child — wait, that is a chain).
	// The chain tree paper->writes->author has a single-child root and is
	// pruned; the valid root is the Writes tuple, which is excluded. The
	// answer that survives is rooted at the author or paper with >= 2
	// children, or the single node matching both terms if any. So we just
	// assert validity here.
	for _, a := range answers {
		assertConnectionTree(t, f.g, a)
	}
}

func TestSignatureStableUnderRootChange(t *testing.T) {
	a1 := &Answer{Root: 5, Edges: []TreeEdge{{From: 5, To: 3, W: 1}, {From: 5, To: 7, W: 1}}}
	a2 := &Answer{Root: 3, Edges: []TreeEdge{{From: 3, To: 5, W: 1}, {From: 5, To: 7, W: 1}}}
	if a1.Signature() != a2.Signature() {
		t.Errorf("signatures differ: %q vs %q", a1.Signature(), a2.Signature())
	}
	a3 := &Answer{Root: 3, Edges: []TreeEdge{{From: 3, To: 5, W: 1}}}
	if a1.Signature() == a3.Signature() {
		t.Error("different trees share a signature")
	}
	single := &Answer{Root: 9}
	single2 := &Answer{Root: 10}
	if single.Signature() == single2.Signature() {
		t.Error("single-node signatures should differ")
	}
}

func TestScoreMonotonicInTreeWeight(t *testing.T) {
	f := newBibFixture(t)
	// With λ=0 (pure proximity) a heavier tree never outranks a lighter
	// one under linear edge scaling.
	o := defaultBibOptions()
	o.HeapSize = 200
	o.Score = ScoreOptions{Lambda: 0, EdgeLog: false}
	answers, err := f.s.Search([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(answers); i++ {
		if answers[i].Weight < answers[i-1].Weight-1e-9 {
			t.Errorf("pure-proximity order violated: w[%d]=%v < w[%d]=%v",
				i, answers[i].Weight, i-1, answers[i-1].Weight)
		}
	}
}
