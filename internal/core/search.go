package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

// Options control one search.
type Options struct {
	// TopK is the number of answers to return (default 10).
	TopK int
	// HeapSize is the capacity of the fixed-size output heap that
	// approximately re-sorts answers by relevance before they are emitted
	// (§3; default 20). Larger values sort better but delay first results.
	// Both the multi-term and the single-term paths emit through this
	// heap, so with a small HeapSize even single-term results arrive in
	// approximate (not exact) relevance order.
	HeapSize int
	// Score holds the §2.3 ranking parameters.
	Score ScoreOptions
	// ExcludedRootTables lists relations whose tuples may not serve as
	// information nodes (the paper's example: Writes). Matching and
	// traversal through them still happen.
	ExcludedRootTables []string
	// MetadataNodeLimit caps how many nodes a metadata (table/column
	// name) match expands to (default 1000, 0 = unlimited). The paper
	// notes metadata keywords matching huge node sets as an open
	// performance problem (§7); the cap is reported in Stats.
	MetadataNodeLimit int
	// MaxPops bounds total Dijkstra iterator pops as a safety valve for
	// disconnected keywords (default 2,000,000). It is the legacy spelling
	// of Budget.MaxPops: when Budget.MaxPops is zero it seeds it.
	MaxPops int
	// Budget is the per-query cost budget. Exhausting any axis stops the
	// expansion cleanly: answers emitted so far are returned and
	// Stats.BudgetExhausted/BudgetReason report the truncation.
	Budget Budget
	// MaxCombosPerVisit caps the cross-product expansion at one node
	// visit (default 10,000); truncation is reported in Stats.
	MaxCombosPerVisit int
	// RequireAllTerms, when true (the default), returns no answers if
	// some term matches nothing. When false, unmatched terms are dropped
	// (the relaxation the paper mentions after the answer model).
	RequireAllTerms bool
	// Strategy selects the execution strategy by registry name ("" uses
	// StrategyBackward, the paper's backward expanding search). Unknown
	// names make Query return an error.
	Strategy string
}

// Budget bounds how much work one query may do before it is cut off with
// a partial answer. Budgets turn pathological queries (huge match sets,
// disconnected keywords, cold stores) from latency outliers into fast,
// flagged truncations — the serving tier's per-query cost control.
type Budget struct {
	// MaxPops bounds Dijkstra iterator pops (0: Options.MaxPops). Pops and
	// arcs are deterministic per (snapshot, query), so truncation under
	// these two axes is reproducible.
	MaxPops int
	// MaxArcsScanned bounds reverse arcs relaxed during expansion
	// (0: unlimited). Arc cost tracks the real work of dense hub nodes,
	// which pops alone under-count.
	MaxArcsScanned int
	// MaxBytesFaulted bounds bytes faulted from the disk store during the
	// query (0: unlimited; no effect without a store-backed engine and an
	// attached fault meter). The meter is engine-global, so concurrent
	// queries' faults charge each other — this axis is a safety valve, not
	// a precise accountant.
	MaxBytesFaulted int64
}

// defaultOpts is the value the exported DefaultOptions copies from; the
// hot path reads its fields directly so applying defaults never allocates.
var defaultOpts = Options{
	TopK:              10,
	HeapSize:          20,
	Score:             DefaultScoreOptions(),
	MetadataNodeLimit: 1000,
	MaxPops:           2_000_000,
	MaxCombosPerVisit: 10_000,
	RequireAllTerms:   true,
}

// DefaultOptions returns the configuration used throughout the paper's
// evaluation: 10 answers, heap of 20, λ=0.2 with edge log scaling.
func DefaultOptions() *Options {
	d := defaultOpts
	return &d
}

// withDefaultsInto writes the defaults-applied copy of o into dst (the
// query arena's resident options block) and returns dst.
func (o *Options) withDefaultsInto(dst *Options) *Options {
	if o == nil {
		*dst = defaultOpts
		dst.Budget.MaxPops = dst.MaxPops
		return dst
	}
	*dst = *o
	if dst.TopK <= 0 {
		dst.TopK = defaultOpts.TopK
	}
	if dst.HeapSize <= 0 {
		dst.HeapSize = defaultOpts.HeapSize
	}
	if dst.MaxPops <= 0 {
		dst.MaxPops = defaultOpts.MaxPops
	}
	if dst.Budget.MaxPops <= 0 {
		dst.Budget.MaxPops = dst.MaxPops
	}
	if dst.MaxCombosPerVisit <= 0 {
		dst.MaxCombosPerVisit = defaultOpts.MaxCombosPerVisit
	}
	return dst
}

// Stats reports what one search did; useful for the evaluation harness and
// for diagnosing truncation.
type Stats struct {
	Terms             []string // active terms after normalization/dropping
	MatchedNodes      []int    // |S_i| per active term
	Pops              int      // iterator pops
	Generated         int      // candidate trees generated (pre-dedup)
	Duplicates        int      // trees dropped as duplicates modulo direction
	SingleChildRoots  int      // trees discarded by the one-child-root rule
	ExcludedRoots     int      // trees discarded by root-table exclusion
	MetadataTruncated bool     // a metadata match hit MetadataNodeLimit
	CombosTruncated   bool     // a cross product hit MaxCombosPerVisit
	TermsDropped      int      // unmatched terms dropped (RequireAllTerms=false)
	FrontierReused    int      // origins served warm from the shared frontier pool (batched strategy)
	ArcsScanned       int      // reverse arcs relaxed during expansion
	BytesFaulted      int64    // store bytes faulted during the query (fault meter attached)
	BudgetExhausted   bool     // the query was truncated by its cost budget
	BudgetReason      string   // which axis cut it off: "pops", "arcs" or "bytes"

	// Distributed execution (the "distributed" strategy, internal/cluster).
	// Zero on single-engine queries.
	PartitionsTotal  int // partitions in the cluster
	PartitionsRouted int // partitions the broker scattered the query to
	PartitionsPruned int // partitions pruned by term-statistics routing
	// PartitionLocalBound reports the distributed completeness bound: every
	// answer whose connection tree lies entirely within one partition was
	// found with its exact single-engine score, but trees crossing partition
	// boundaries were not searched (boundary-arc stitching is deferred).
	// Always true for distributed queries over more than one partition.
	PartitionLocalBound bool
}

// Searcher answers keyword queries over a graph + keyword index pair —
// any graph.View/index.View implementations (built, store-backed lazy, or
// base+delta overlay). It is safe for concurrent use: each Search call
// checks a searchArena — the dense per-query scratch state — out of an
// internal pool, so concurrent queries never share mutable state while
// steady-state searches allocate almost nothing.
type Searcher struct {
	g         graph.View
	ix        index.View
	cache     *index.MatchCache  // optional; nil disables match-set caching
	flight    *index.FlightGroup // optional; nil disables single-flight admission
	frontiers *frontierPool      // optional; nil disables frontier pooling
	fault     func() int64       // optional; cumulative store bytes faulted
	arenas    sync.Pool          // of *searchArena sized to g.NumNodes()
	// epoch is the snapshot epoch this Searcher's g/ix pair belongs to,
	// threaded through every cache and flight-group lookup so warm state
	// carried over from a previous snapshot is consulted safely.
	epoch uint64
	// frontierGen is the frontier pool generation this snapshot is valid
	// for; checkouts and checkins against a pool that has structurally
	// moved on are rejected.
	frontierGen uint64
}

// NewSearcher returns a Searcher over g and ix (built from the same
// database snapshot).
func NewSearcher(g graph.View, ix index.View) *Searcher {
	s := &Searcher{g: g, ix: ix}
	n := g.NumNodes()
	s.arenas.New = func() interface{} { return newSearchArena(n) }
	return s
}

// Graph returns the underlying data graph view.
func (s *Searcher) Graph() graph.View { return s.g }

// Index returns the underlying keyword index view.
func (s *Searcher) Index() index.View { return s.ix }

// WithMatchCache attaches a keyword match-set cache consulted before the
// index on every term lookup (exact and prefix). The cache must belong to
// the same immutable graph/index snapshot as the Searcher; attach it
// before the Searcher is shared between goroutines (the cache itself is
// safe for concurrent use). Returns s for chaining.
func (s *Searcher) WithMatchCache(c *index.MatchCache) *Searcher {
	s.cache = c
	return s
}

// MatchCache returns the attached match-set cache, or nil when caching is
// disabled.
func (s *Searcher) MatchCache() *index.MatchCache { return s.cache }

// WithFlightGroup attaches the single-flight admission layer used by the
// batched strategy: concurrent queries resolving the same term share one
// index lookup instead of repeating it. Like the cache, the group belongs
// to one immutable snapshot and must be attached before the Searcher is
// shared. Returns s for chaining.
func (s *Searcher) WithFlightGroup(g *index.FlightGroup) *Searcher {
	s.flight = g
	return s
}

// FlightGroup returns the attached single-flight group, or nil when
// admission coalescing is disabled.
func (s *Searcher) FlightGroup() *index.FlightGroup { return s.flight }

// WithFrontierPool attaches a pooled per-term frontier of maxIters warm
// iterators: the batched strategy checks each origin's shortest-path
// iterator out of the pool and replays its memoized expansion instead of
// re-running Dijkstra, so a burst of queries sharing terms shares
// expansion work. maxIters <= 0 disables pooling. Returns s for chaining.
func (s *Searcher) WithFrontierPool(maxIters int) *Searcher {
	s.frontiers = newFrontierPool(maxIters)
	return s
}

// WithSnapshotEpoch stamps the Searcher with the snapshot epoch of its
// graph/index pair. The epoch keys every match-cache and flight-group
// lookup, so a cache carried over from a previous snapshot serves this
// Searcher only entries valid for its epoch (and entries this Searcher
// resolves are rejected once the cache moves past it). Attach before the
// Searcher is shared. Returns s for chaining.
func (s *Searcher) WithSnapshotEpoch(epoch uint64) *Searcher {
	s.epoch = epoch
	return s
}

// SnapshotEpoch returns the stamped snapshot epoch (0 when never
// stamped — the epoch of a freshly built cache).
func (s *Searcher) SnapshotEpoch() uint64 { return s.epoch }

// AdoptFrontierPool shares prev's memoized frontier pool with s instead
// of a fresh one. For a non-structural publish (pure text mutations: the
// node set, arcs and prestige are unchanged) the pooled iterators remain
// valid — their expansions are over an identical graph — so s adopts the
// pool at its current generation and replays stay warm. For a structural
// publish the pool's generation is bumped, which empties it and makes
// in-flight old-snapshot queries' late checkins no-ops. No-op when prev
// has no pool. Returns s for chaining.
func (s *Searcher) AdoptFrontierPool(prev *Searcher, structural bool) *Searcher {
	if prev == nil || prev.frontiers == nil {
		return s
	}
	s.frontiers = prev.frontiers
	if structural {
		s.frontierGen = s.frontiers.bumpGen()
	} else {
		s.frontierGen = prev.frontierGen
	}
	return s
}

// WithFaultMeter attaches a cumulative byte counter of store faults
// (typically store.Store.FaultedBytes). The executor samples it at query
// start and end to report Stats.BytesFaulted and to enforce
// Budget.MaxBytesFaulted. fn must be safe for concurrent use. Attach
// before the Searcher is shared. Returns s for chaining.
func (s *Searcher) WithFaultMeter(fn func() int64) *Searcher {
	s.fault = fn
	return s
}

// FrontierReuses reports how many origins (across all queries so far) were
// served warm from the frontier pool; 0 when pooling is disabled.
func (s *Searcher) FrontierReuses() int64 { return s.frontiers.reuses() }

// acquireArena checks a per-query arena out of the pool; releaseArena puts
// it back after wiping its per-query state.
func (s *Searcher) acquireArena() *searchArena { return s.arenas.Get().(*searchArena) }

func (s *Searcher) releaseArena(a *searchArena) {
	a.release()
	s.arenas.Put(a)
}

// Request describes one keyword query for Query — the unified,
// context-aware entry point the specialised helpers (Search, SearchStats,
// SearchStream, SearchQualified) are thin wrappers over.
type Request struct {
	// Terms are the (already split) query terms. Terms are trimmed and
	// lowercased; empty terms are dropped.
	Terms []string
	// Qualified enables the §7 "relation:keyword" / "attribute:keyword"
	// term forms: a term containing a colon is split into qualifier and
	// keyword and restricted accordingly.
	Qualified bool
	// Prefix enables approximate matching (§7): an unqualified term that
	// matches no indexed token exactly falls back to prefix matching.
	Prefix bool
	// DB is the database the graph was built from; it is required only to
	// resolve attribute qualifiers (Qualified terms naming a column).
	DB *sqldb.Database
}

// excludedTables resolves ExcludedRootTables to a table-id set, reusing
// the arena's map (cleared, buckets retained) so repeat queries with
// exclusions do not allocate.
func (s *Searcher) excludedTables(ar *searchArena, o *Options) map[int32]bool {
	if len(o.ExcludedRootTables) == 0 {
		return nil
	}
	excluded := ar.excludedBuf
	if excluded == nil {
		excluded = make(map[int32]bool, len(o.ExcludedRootTables))
		ar.excludedBuf = excluded
	} else {
		clear(excluded)
	}
	for _, name := range o.ExcludedRootTables {
		if id := s.g.TableID(name); id >= 0 {
			excluded[id] = true
		}
	}
	return excluded
}

// matchTerm resolves one term to its node set through the strategy's
// resolver, expanding metadata matches to whole tables subject to
// MetadataNodeLimit. The limit budgets actually admitted metadata nodes,
// so duplicate index postings and data/metadata overlap cannot inflate it.
// The set is accumulated onto dst (typically one of the arena's reusable
// per-term buffers) and the extended slice returned.
func (s *Searcher) matchTerm(ar *searchArena, res termResolver, term string, o *Options, stats *Stats, dst []graph.NodeID) []graph.NodeID {
	m := res.lookup(term)
	gen := ar.bumpMark()
	set := dst[:0]
	for _, n := range m.Nodes {
		if ar.mark[n] != gen {
			ar.mark[n] = gen
			set = append(set, n)
		}
	}
	f := &ar.matchBuf
	f.gen = gen
	f.limit = o.MetadataNodeLimit
	f.metaAdmitted = 0
	f.set = set
	visit := ar.matchVisitor()
	for _, tid := range m.Tables {
		f.truncated = false
		s.g.EachTableNode(tid, visit)
		if f.truncated {
			stats.MetadataTruncated = true
			break
		}
	}
	set, f.set = f.set, nil
	return set
}

// Rescore recomputes answer scores under different scoring options without
// re-running the search; the evaluation harness uses it to compare
// parameter settings over a fixed candidate pool.
func (s *Searcher) Rescore(answers []*Answer, score ScoreOptions) []*Answer {
	out := make([]*Answer, len(answers))
	for i, a := range answers {
		c := *a
		scoreAnswer(&c, s.g, score)
		out[i] = &c
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// ErrNoMatch is a helper sentinel some callers use to signal an empty
// result to their own users. Search itself returns (nil, nil) when nothing
// matches.
var ErrNoMatch = fmt.Errorf("core: no results")
