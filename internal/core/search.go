package core

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
)

// Options control one search.
type Options struct {
	// TopK is the number of answers to return (default 10).
	TopK int
	// HeapSize is the capacity of the fixed-size output heap that
	// approximately re-sorts answers by relevance before they are emitted
	// (§3; default 20). Larger values sort better but delay first results.
	HeapSize int
	// Score holds the §2.3 ranking parameters.
	Score ScoreOptions
	// ExcludedRootTables lists relations whose tuples may not serve as
	// information nodes (the paper's example: Writes). Matching and
	// traversal through them still happen.
	ExcludedRootTables []string
	// MetadataNodeLimit caps how many nodes a metadata (table/column
	// name) match expands to (default 1000, 0 = unlimited). The paper
	// notes metadata keywords matching huge node sets as an open
	// performance problem (§7); the cap is reported in Stats.
	MetadataNodeLimit int
	// MaxPops bounds total Dijkstra iterator pops as a safety valve for
	// disconnected keywords (default 2,000,000).
	MaxPops int
	// MaxCombosPerVisit caps the cross-product expansion at one node
	// visit (default 10,000); truncation is reported in Stats.
	MaxCombosPerVisit int
	// RequireAllTerms, when true (the default), returns no answers if
	// some term matches nothing. When false, unmatched terms are dropped
	// (the relaxation the paper mentions after the answer model).
	RequireAllTerms bool
}

// DefaultOptions returns the configuration used throughout the paper's
// evaluation: 10 answers, heap of 20, λ=0.2 with edge log scaling.
func DefaultOptions() *Options {
	return &Options{
		TopK:              10,
		HeapSize:          20,
		Score:             DefaultScoreOptions(),
		MetadataNodeLimit: 1000,
		MaxPops:           2_000_000,
		MaxCombosPerVisit: 10_000,
		RequireAllTerms:   true,
	}
}

func (o *Options) withDefaults() *Options {
	d := DefaultOptions()
	if o == nil {
		return d
	}
	c := *o
	if c.TopK <= 0 {
		c.TopK = d.TopK
	}
	if c.HeapSize <= 0 {
		c.HeapSize = d.HeapSize
	}
	if c.MaxPops <= 0 {
		c.MaxPops = d.MaxPops
	}
	if c.MaxCombosPerVisit <= 0 {
		c.MaxCombosPerVisit = d.MaxCombosPerVisit
	}
	return &c
}

// Stats reports what one search did; useful for the evaluation harness and
// for diagnosing truncation.
type Stats struct {
	Terms             []string // active terms after normalization/dropping
	MatchedNodes      []int    // |S_i| per active term
	Pops              int      // iterator pops
	Generated         int      // candidate trees generated (pre-dedup)
	Duplicates        int      // trees dropped as duplicates modulo direction
	SingleChildRoots  int      // trees discarded by the one-child-root rule
	ExcludedRoots     int      // trees discarded by root-table exclusion
	MetadataTruncated bool     // a metadata match hit MetadataNodeLimit
	CombosTruncated   bool     // a cross product hit MaxCombosPerVisit
	TermsDropped      int      // unmatched terms dropped (RequireAllTerms=false)
}

// Searcher answers keyword queries over a graph + keyword index pair.
// It is safe for concurrent use; each Search call keeps its own state.
type Searcher struct {
	g  *graph.Graph
	ix *index.Index
}

// NewSearcher returns a Searcher over g and ix (built from the same
// database snapshot).
func NewSearcher(g *graph.Graph, ix *index.Index) *Searcher {
	return &Searcher{g: g, ix: ix}
}

// Graph returns the underlying data graph.
func (s *Searcher) Graph() *graph.Graph { return s.g }

// Index returns the underlying keyword index.
func (s *Searcher) Index() *index.Index { return s.ix }

// Search runs the backward expanding search for the given terms.
func (s *Searcher) Search(terms []string, opts *Options) ([]*Answer, error) {
	answers, _, err := s.SearchStats(terms, opts)
	return answers, err
}

// SearchStats is Search plus execution statistics.
func (s *Searcher) SearchStats(terms []string, opts *Options) ([]*Answer, *Stats, error) {
	return s.searchWithCallback(terms, opts, nil)
}

// searchWithCallback is the shared driver behind SearchStats and
// SearchStream. cb, when non-nil, sees every answer at emission time and
// may cancel by returning false.
func (s *Searcher) searchWithCallback(terms []string, opts *Options, cb func(*Answer) bool) ([]*Answer, *Stats, error) {
	o := opts.withDefaults()
	stats := &Stats{}

	var clean []string
	for _, t := range terms {
		t = strings.TrimSpace(strings.ToLower(t))
		if t != "" {
			clean = append(clean, t)
		}
	}
	if len(clean) == 0 {
		return nil, stats, errors.New("core: empty query")
	}

	// Locate S_i for each term (§3 step 1).
	var sets [][]graph.NodeID
	var active []string
	for _, term := range clean {
		set := s.matchTerm(term, o, stats)
		if len(set) == 0 {
			if o.RequireAllTerms {
				stats.Terms = active
				return nil, stats, nil
			}
			stats.TermsDropped++
			continue
		}
		sets = append(sets, set)
		active = append(active, term)
	}
	stats.Terms = active
	for _, set := range sets {
		stats.MatchedNodes = append(stats.MatchedNodes, len(set))
	}
	if len(sets) == 0 {
		return nil, stats, nil
	}

	excluded := make(map[int32]bool, len(o.ExcludedRootTables))
	for _, name := range o.ExcludedRootTables {
		if id := s.g.TableID(name); id >= 0 {
			excluded[id] = true
		}
	}

	if len(sets) == 1 {
		answers := s.searchSingleTerm(sets[0], active, excluded, o, stats)
		for _, a := range answers {
			if cb != nil && !cb(a) {
				break
			}
		}
		return answers, stats, nil
	}
	return s.searchMultiTerm(sets, active, excluded, o, stats, cb), stats, nil
}

// matchTerm resolves one term to its node set, expanding metadata matches
// to whole tables subject to MetadataNodeLimit.
func (s *Searcher) matchTerm(term string, o *Options, stats *Stats) []graph.NodeID {
	m := s.ix.Lookup(term)
	seen := make(map[graph.NodeID]bool, len(m.Nodes))
	set := make([]graph.NodeID, 0, len(m.Nodes))
	for _, n := range m.Nodes {
		if !seen[n] {
			seen[n] = true
			set = append(set, n)
		}
	}
	for _, tid := range m.Tables {
		lo, hi := s.g.NodesOfTable(tid)
		for n := lo; n < hi; n++ {
			if o.MetadataNodeLimit > 0 && len(set) >= len(m.Nodes)+o.MetadataNodeLimit {
				stats.MetadataTruncated = true
				return set
			}
			if !seen[n] {
				seen[n] = true
				set = append(set, n)
			}
		}
	}
	return set
}

// searchSingleTerm handles n=1 exactly: any tree with edges has a
// single-child root and is discarded by the §3 rule, so the answers are
// precisely the matching nodes, ranked by relevance (EScore of a node tree
// is 1, so prestige separates them — the "Mohan" anecdote).
func (s *Searcher) searchSingleTerm(set []graph.NodeID, terms []string, excluded map[int32]bool, o *Options, stats *Stats) []*Answer {
	answers := make([]*Answer, 0, len(set))
	for _, n := range set {
		if excluded[s.g.TableOf(n)] {
			stats.ExcludedRoots++
			continue
		}
		a := &Answer{Root: n, TermNodes: []graph.NodeID{n}}
		scoreAnswer(a, s.g, o.Score)
		answers = append(answers, a)
		stats.Generated++
	}
	sort.SliceStable(answers, func(i, j int) bool {
		if answers[i].Score != answers[j].Score {
			return answers[i].Score > answers[j].Score
		}
		return answers[i].Root < answers[j].Root
	})
	if len(answers) > o.TopK {
		answers = answers[:o.TopK]
	}
	for i, a := range answers {
		a.Rank = i + 1
	}
	_ = terms
	return answers
}

// iterEntry is one shortest-path iterator in the iterator heap, keyed by
// the distance of the next node it will output.
type iterEntry struct {
	it   *sspIterator
	next float64
}

type iterHeap []*iterEntry

func (h iterHeap) Len() int            { return len(h) }
func (h iterHeap) Less(i, j int) bool  { return h[i].next < h[j].next }
func (h iterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x interface{}) { *h = append(*h, x.(*iterEntry)) }
func (h *iterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// resultItem is an answer in the fixed-size output heap (a max-heap on
// relevance: overflow emits the best answer seen so far).
type resultItem struct {
	ans *Answer
	idx int
	sig string
}

type resultHeap []*resultItem

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return h[i].ans.Score > h[j].ans.Score }
func (h resultHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *resultHeap) Push(x interface{}) {
	it := x.(*resultItem)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// searchMultiTerm is the backward expanding search of Figure 3. cb, when
// non-nil, observes answers at emission time and may cancel the search.
func (s *Searcher) searchMultiTerm(sets [][]graph.NodeID, terms []string, excluded map[int32]bool, o *Options, stats *Stats, cb func(*Answer) bool) []*Answer {
	n := len(sets)

	// A node may match several terms; it gets one iterator but appears in
	// each term's origin list.
	originTerms := make(map[graph.NodeID][]int)
	for ti, set := range sets {
		for _, node := range set {
			originTerms[node] = append(originTerms[node], ti)
		}
	}
	iters := make(map[graph.NodeID]*sspIterator, len(originTerms))
	var ih iterHeap
	for node := range originTerms {
		it := newSSPIterator(s.g, node)
		iters[node] = it
		if _, d, ok := it.Peek(); ok {
			ih = append(ih, &iterEntry{it: it, next: d})
		}
	}
	heap.Init(&ih)

	// Per-visited-node term lists (v.L_i in the pseudocode).
	lists := make(map[graph.NodeID][][]graph.NodeID)
	getLists := func(v graph.NodeID) [][]graph.NodeID {
		l, ok := lists[v]
		if !ok {
			l = make([][]graph.NodeID, n)
			lists[v] = l
		}
		return l
	}

	var (
		emitted []*Answer
		rh      resultHeap
		inHeap  = make(map[string]*resultItem)
		outSig  = make(map[string]bool)
	)
	stopped := false
	emitBest := func() {
		item := heap.Pop(&rh).(*resultItem)
		delete(inHeap, item.sig)
		outSig[item.sig] = true
		emitted = append(emitted, item.ans)
		item.ans.Rank = len(emitted)
		if cb != nil && !cb(item.ans) {
			stopped = true
		}
	}
	offer := func(a *Answer) {
		sig := a.Signature()
		if outSig[sig] {
			// A duplicate of an already-output answer is discarded even
			// if its relevance is higher (§3).
			stats.Duplicates++
			return
		}
		if prev, ok := inHeap[sig]; ok {
			stats.Duplicates++
			if a.Score > prev.ans.Score {
				prev.ans = a
				heap.Fix(&rh, prev.idx)
			}
			return
		}
		item := &resultItem{ans: a, sig: sig}
		if len(rh) >= o.HeapSize {
			emitBest()
		}
		heap.Push(&rh, item)
		inHeap[sig] = item
	}

	// generate builds all new connection trees rooted at v that use origin
	// as the term-ti leaf (CrossProduct in the pseudocode).
	generate := func(v graph.NodeID, origin graph.NodeID, ti int) {
		l := getLists(v)
		rootExcluded := excluded[s.g.TableOf(v)]
		// Cross product of {origin} with the other term lists.
		combo := make([]graph.NodeID, n)
		combo[ti] = origin
		produced := 0
		var rec func(term int) bool
		rec = func(term int) bool {
			if term == n {
				if produced >= o.MaxCombosPerVisit {
					stats.CombosTruncated = true
					return false
				}
				produced++
				stats.Generated++
				if rootExcluded {
					stats.ExcludedRoots++
					return true
				}
				if a := s.buildAnswer(v, combo, iters, o, stats); a != nil {
					offer(a)
				}
				return true
			}
			if term == ti {
				return rec(term + 1)
			}
			if len(l[term]) == 0 {
				return false
			}
			for _, other := range l[term] {
				combo[term] = other
				if !rec(term + 1) {
					return false
				}
			}
			return true
		}
		rec(0)
		l[ti] = append(l[ti], origin)
	}

	for len(ih) > 0 && len(emitted) < o.TopK && stats.Pops < o.MaxPops && !stopped {
		entry := ih[0]
		v, _, ok := entry.it.Next()
		if !ok {
			heap.Pop(&ih)
			continue
		}
		stats.Pops++
		if _, d, more := entry.it.Peek(); more {
			entry.next = d
			heap.Fix(&ih, 0)
		} else {
			heap.Pop(&ih)
		}
		for _, ti := range originTerms[entry.it.origin] {
			generate(v, entry.it.origin, ti)
		}
	}
	for len(rh) > 0 && len(emitted) < o.TopK && !stopped {
		emitBest()
	}
	// Heap overflow during a single node visit can emit a result or two
	// beyond TopK; trim to the contract.
	if len(emitted) > o.TopK {
		emitted = emitted[:o.TopK]
	}
	for i, a := range emitted {
		a.Rank = i + 1
	}
	return emitted
}

// buildAnswer materializes the connection tree rooted at v whose term-i
// leaf is combo[i], as the union of the per-iterator shortest paths. The
// paper's pseudocode treats this union as a tree, but two shortest paths
// can diverge and reconverge, giving a node two parents; we splice instead:
// once a path reaches a node already in the tree, the existing route from
// the root is reused and the walk continues from that node. Every leaf
// stays reachable from the root and the result is a genuine tree. Returns
// nil for trees pruned by the single-child-root rule.
func (s *Searcher) buildAnswer(v graph.NodeID, combo []graph.NodeID, iters map[graph.NodeID]*sspIterator, o *Options, stats *Stats) *Answer {
	inTree := map[graph.NodeID]bool{v: true}
	var edges []TreeEdge
	var scratch []TreeEdge
	for _, origin := range combo {
		it := iters[origin]
		if it == nil {
			return nil
		}
		scratch = it.PathEdges(v, scratch[:0])
		for _, e := range scratch {
			if inTree[e.To] {
				continue // reuse the existing root->e.To route
			}
			inTree[e.To] = true
			edges = append(edges, e)
		}
	}
	a := &Answer{
		Root:      v,
		Edges:     edges,
		TermNodes: append([]graph.NodeID(nil), combo...),
	}
	if len(edges) > 0 && a.rootChildren() == 1 {
		stats.SingleChildRoots++
		return nil
	}
	for _, e := range edges {
		a.Weight += e.W
	}
	sort.Slice(a.Edges, func(i, j int) bool {
		if a.Edges[i].From != a.Edges[j].From {
			return a.Edges[i].From < a.Edges[j].From
		}
		return a.Edges[i].To < a.Edges[j].To
	})
	scoreAnswer(a, s.g, o.Score)
	return a
}

// Rescore recomputes answer scores under different scoring options without
// re-running the search; the evaluation harness uses it to compare
// parameter settings over a fixed candidate pool.
func (s *Searcher) Rescore(answers []*Answer, score ScoreOptions) []*Answer {
	out := make([]*Answer, len(answers))
	for i, a := range answers {
		c := *a
		scoreAnswer(&c, s.g, score)
		out[i] = &c
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// ErrNoMatch is a helper sentinel some callers use to signal an empty
// result to their own users. Search itself returns (nil, nil) when nothing
// matches.
var ErrNoMatch = fmt.Errorf("core: no results")
