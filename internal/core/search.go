package core

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

// Options control one search.
type Options struct {
	// TopK is the number of answers to return (default 10).
	TopK int
	// HeapSize is the capacity of the fixed-size output heap that
	// approximately re-sorts answers by relevance before they are emitted
	// (§3; default 20). Larger values sort better but delay first results.
	// Both the multi-term and the single-term paths emit through this
	// heap, so with a small HeapSize even single-term results arrive in
	// approximate (not exact) relevance order.
	HeapSize int
	// Score holds the §2.3 ranking parameters.
	Score ScoreOptions
	// ExcludedRootTables lists relations whose tuples may not serve as
	// information nodes (the paper's example: Writes). Matching and
	// traversal through them still happen.
	ExcludedRootTables []string
	// MetadataNodeLimit caps how many nodes a metadata (table/column
	// name) match expands to (default 1000, 0 = unlimited). The paper
	// notes metadata keywords matching huge node sets as an open
	// performance problem (§7); the cap is reported in Stats.
	MetadataNodeLimit int
	// MaxPops bounds total Dijkstra iterator pops as a safety valve for
	// disconnected keywords (default 2,000,000).
	MaxPops int
	// MaxCombosPerVisit caps the cross-product expansion at one node
	// visit (default 10,000); truncation is reported in Stats.
	MaxCombosPerVisit int
	// RequireAllTerms, when true (the default), returns no answers if
	// some term matches nothing. When false, unmatched terms are dropped
	// (the relaxation the paper mentions after the answer model).
	RequireAllTerms bool
}

// DefaultOptions returns the configuration used throughout the paper's
// evaluation: 10 answers, heap of 20, λ=0.2 with edge log scaling.
func DefaultOptions() *Options {
	return &Options{
		TopK:              10,
		HeapSize:          20,
		Score:             DefaultScoreOptions(),
		MetadataNodeLimit: 1000,
		MaxPops:           2_000_000,
		MaxCombosPerVisit: 10_000,
		RequireAllTerms:   true,
	}
}

func (o *Options) withDefaults() *Options {
	d := DefaultOptions()
	if o == nil {
		return d
	}
	c := *o
	if c.TopK <= 0 {
		c.TopK = d.TopK
	}
	if c.HeapSize <= 0 {
		c.HeapSize = d.HeapSize
	}
	if c.MaxPops <= 0 {
		c.MaxPops = d.MaxPops
	}
	if c.MaxCombosPerVisit <= 0 {
		c.MaxCombosPerVisit = d.MaxCombosPerVisit
	}
	return &c
}

// Stats reports what one search did; useful for the evaluation harness and
// for diagnosing truncation.
type Stats struct {
	Terms             []string // active terms after normalization/dropping
	MatchedNodes      []int    // |S_i| per active term
	Pops              int      // iterator pops
	Generated         int      // candidate trees generated (pre-dedup)
	Duplicates        int      // trees dropped as duplicates modulo direction
	SingleChildRoots  int      // trees discarded by the one-child-root rule
	ExcludedRoots     int      // trees discarded by root-table exclusion
	MetadataTruncated bool     // a metadata match hit MetadataNodeLimit
	CombosTruncated   bool     // a cross product hit MaxCombosPerVisit
	TermsDropped      int      // unmatched terms dropped (RequireAllTerms=false)
}

// Searcher answers keyword queries over a graph + keyword index pair.
// It is safe for concurrent use: each Search call checks a searchArena —
// the dense per-query scratch state — out of an internal pool, so
// concurrent queries never share mutable state while steady-state searches
// allocate almost nothing.
type Searcher struct {
	g      *graph.Graph
	ix     *index.Index
	cache  *index.MatchCache // optional; nil disables match-set caching
	arenas sync.Pool         // of *searchArena sized to g.NumNodes()
}

// NewSearcher returns a Searcher over g and ix (built from the same
// database snapshot).
func NewSearcher(g *graph.Graph, ix *index.Index) *Searcher {
	s := &Searcher{g: g, ix: ix}
	n := g.NumNodes()
	s.arenas.New = func() interface{} { return newSearchArena(n) }
	return s
}

// Graph returns the underlying data graph.
func (s *Searcher) Graph() *graph.Graph { return s.g }

// Index returns the underlying keyword index.
func (s *Searcher) Index() *index.Index { return s.ix }

// WithMatchCache attaches a keyword match-set cache consulted before the
// index on every term lookup (exact and prefix). The cache must belong to
// the same immutable graph/index snapshot as the Searcher; attach it
// before the Searcher is shared between goroutines (the cache itself is
// safe for concurrent use). Returns s for chaining.
func (s *Searcher) WithMatchCache(c *index.MatchCache) *Searcher {
	s.cache = c
	return s
}

// MatchCache returns the attached match-set cache, or nil when caching is
// disabled.
func (s *Searcher) MatchCache() *index.MatchCache { return s.cache }

// acquireArena checks a per-query arena out of the pool; releaseArena puts
// it back after wiping its per-query state.
func (s *Searcher) acquireArena() *searchArena { return s.arenas.Get().(*searchArena) }

func (s *Searcher) releaseArena(a *searchArena) {
	a.release()
	s.arenas.Put(a)
}

// Request describes one keyword query for Query — the unified,
// context-aware entry point the specialised helpers (Search, SearchStats,
// SearchStream, SearchQualified) are thin wrappers over.
type Request struct {
	// Terms are the (already split) query terms. Terms are trimmed and
	// lowercased; empty terms are dropped.
	Terms []string
	// Qualified enables the §7 "relation:keyword" / "attribute:keyword"
	// term forms: a term containing a colon is split into qualifier and
	// keyword and restricted accordingly.
	Qualified bool
	// Prefix enables approximate matching (§7): an unqualified term that
	// matches no indexed token exactly falls back to prefix matching.
	Prefix bool
	// DB is the database the graph was built from; it is required only to
	// resolve attribute qualifiers (Qualified terms naming a column).
	DB *sqldb.Database
}

// cancelCheckMask sets how often the expansion loops poll ctx.Done():
// every cancelCheckMask+1 iterator pops. 256 pops is a few microseconds
// of work, so cancellation latency stays far below any plausible
// deadline while the steady-state cost of the check is noise.
const cancelCheckMask = 256 - 1

// Search runs the backward expanding search for the given terms.
func (s *Searcher) Search(terms []string, opts *Options) ([]*Answer, error) {
	answers, _, err := s.Query(context.Background(), Request{Terms: terms}, opts, nil)
	return answers, err
}

// SearchStats is Search plus execution statistics.
func (s *Searcher) SearchStats(terms []string, opts *Options) ([]*Answer, *Stats, error) {
	return s.Query(context.Background(), Request{Terms: terms}, opts, nil)
}

// Query is the unified search driver: it resolves the request's terms to
// node sets (plain, qualified or prefix matching per the request), runs
// the backward expanding search under ctx, and returns the emitted
// answers with execution statistics. cb, when non-nil, sees every answer
// at emission time and may cancel by returning false (the search then
// stops cleanly with the answers emitted so far). When ctx is canceled or
// its deadline passes, the expansion loop stops within a few hundred
// iterator pops and Query returns ctx's error.
func (s *Searcher) Query(ctx context.Context, req Request, opts *Options, cb func(*Answer) bool) ([]*Answer, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := opts.withDefaults()
	stats := &Stats{}

	var clean []string
	for _, t := range req.Terms {
		t = strings.TrimSpace(strings.ToLower(t))
		if t != "" {
			clean = append(clean, t)
		}
	}
	if len(clean) == 0 {
		return nil, stats, errors.New("core: empty query")
	}

	ar := s.acquireArena()
	defer s.releaseArena(ar)

	// Locate S_i for each term (§3 step 1).
	var sets [][]graph.NodeID
	var active []string
	for _, term := range clean {
		var set []graph.NodeID
		if qual, bare, ok := parseQualifiedTerm(term); req.Qualified && ok {
			set = s.matchQualified(ar, req.DB, qual, bare, o, stats)
		} else {
			set = s.matchTerm(ar, term, o, stats)
			if len(set) == 0 && req.Prefix {
				set = s.cache.LookupPrefix(s.ix, term)
			}
		}
		if len(set) == 0 {
			if o.RequireAllTerms {
				stats.Terms = active
				return nil, stats, nil
			}
			stats.TermsDropped++
			continue
		}
		sets = append(sets, set)
		active = append(active, term)
	}
	stats.Terms = active
	for _, set := range sets {
		stats.MatchedNodes = append(stats.MatchedNodes, len(set))
	}
	if len(sets) == 0 {
		return nil, stats, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}

	excluded := s.excludedTables(o)

	var answers []*Answer
	var err error
	if len(sets) == 1 {
		answers, err = s.searchSingleTerm(ctx, ar, sets[0], excluded, o, stats, cb)
	} else {
		answers, err = s.searchMultiTerm(ctx, ar, sets, excluded, o, stats, cb)
	}
	if err != nil {
		return nil, stats, err
	}
	return answers, stats, nil
}

// excludedTables resolves ExcludedRootTables to a table-id set.
func (s *Searcher) excludedTables(o *Options) map[int32]bool {
	if len(o.ExcludedRootTables) == 0 {
		return nil
	}
	excluded := make(map[int32]bool, len(o.ExcludedRootTables))
	for _, name := range o.ExcludedRootTables {
		if id := s.g.TableID(name); id >= 0 {
			excluded[id] = true
		}
	}
	return excluded
}

// matchTerm resolves one term to its node set, expanding metadata matches
// to whole tables subject to MetadataNodeLimit. The limit budgets actually
// admitted metadata nodes, so duplicate index postings and data/metadata
// overlap cannot inflate it.
func (s *Searcher) matchTerm(ar *searchArena, term string, o *Options, stats *Stats) []graph.NodeID {
	m := s.cache.Lookup(s.ix, term)
	gen := ar.bumpMark()
	set := make([]graph.NodeID, 0, len(m.Nodes))
	for _, n := range m.Nodes {
		if ar.mark[n] != gen {
			ar.mark[n] = gen
			set = append(set, n)
		}
	}
	metaAdmitted := 0
	for _, tid := range m.Tables {
		lo, hi := s.g.NodesOfTable(tid)
		for n := lo; n < hi; n++ {
			if ar.mark[n] == gen {
				continue
			}
			if o.MetadataNodeLimit > 0 && metaAdmitted >= o.MetadataNodeLimit {
				stats.MetadataTruncated = true
				return set
			}
			ar.mark[n] = gen
			set = append(set, n)
			metaAdmitted++
		}
	}
	return set
}

// emitter drives the fixed-size output heap of §3 shared by the single-
// and multi-term paths: candidate answers are offered, deduplicated by
// hashed tree signature, buffered up to HeapSize, and emitted best-first
// on overflow and during the final drain.
type emitter struct {
	o       *Options
	stats   *Stats
	cb      func(*Answer) bool
	rh      resultHeap
	inHeap  map[uint64]*resultItem
	outSig  map[uint64]bool
	seq     int
	emitted []*Answer
	stopped bool
}

func newEmitter(ar *searchArena, o *Options, stats *Stats, cb func(*Answer) bool) *emitter {
	return &emitter{o: o, stats: stats, cb: cb, inHeap: ar.inHeap, outSig: ar.outSig}
}

func (em *emitter) emitBest() {
	item := heap.Pop(&em.rh).(*resultItem)
	delete(em.inHeap, item.sig)
	em.outSig[item.sig] = true
	em.emitted = append(em.emitted, item.ans)
	item.ans.Rank = len(em.emitted)
	if em.cb != nil && !em.cb(item.ans) {
		em.stopped = true
	}
}

func (em *emitter) offer(a *Answer) {
	sig := a.sigHash()
	if em.outSig[sig] {
		// A duplicate of an already-output answer is discarded even if its
		// relevance is higher (§3).
		em.stats.Duplicates++
		return
	}
	if prev, ok := em.inHeap[sig]; ok {
		em.stats.Duplicates++
		if a.Score > prev.ans.Score {
			prev.ans = a
			heap.Fix(&em.rh, prev.idx)
		}
		return
	}
	item := &resultItem{ans: a, sig: sig, seq: em.seq}
	em.seq++
	if len(em.rh) >= em.o.HeapSize {
		em.emitBest()
	}
	heap.Push(&em.rh, item)
	em.inHeap[sig] = item
}

// drain emits buffered answers best-first until TopK is reached or the
// heap empties.
func (em *emitter) drain() {
	for len(em.rh) > 0 && len(em.emitted) < em.o.TopK && !em.stopped {
		em.emitBest()
	}
}

// finish trims the overshoot (heap overflow during a single node visit can
// emit a result or two beyond TopK) and fixes ranks.
func (em *emitter) finish() []*Answer {
	if len(em.emitted) > em.o.TopK {
		em.emitted = em.emitted[:em.o.TopK]
	}
	for i, a := range em.emitted {
		a.Rank = i + 1
	}
	return em.emitted
}

// searchSingleTerm handles n=1 exactly: any tree with edges has a
// single-child root and is discarded by the §3 rule, so the answers are
// precisely the matching nodes, ranked by relevance (EScore of a node tree
// is 1, so prestige separates them — the "Mohan" anecdote). Answers flow
// through the same fixed-size output heap as the multi-term path, so the
// emission contract (approximate relevance order, governed by HeapSize) is
// identical for both.
func (s *Searcher) searchSingleTerm(ctx context.Context, ar *searchArena, set []graph.NodeID, excluded map[int32]bool, o *Options, stats *Stats, cb func(*Answer) bool) ([]*Answer, error) {
	em := newEmitter(ar, o, stats, cb)
	for i, n := range set {
		if em.stopped || len(em.emitted) >= o.TopK {
			break
		}
		if i&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if excluded[s.g.TableOf(n)] {
			stats.ExcludedRoots++
			continue
		}
		a := &Answer{Root: n, TermNodes: []graph.NodeID{n}}
		scoreAnswer(a, s.g, o.Score)
		stats.Generated++
		em.offer(a)
	}
	em.drain()
	return em.finish(), nil
}

// iterEntry is one shortest-path iterator in the iterator heap, keyed by
// the distance of the next node it will output.
type iterEntry struct {
	it   *sspIterator
	next float64
}

// iterHeap is a hand-rolled binary min-heap of iterator entries, stored by
// value to avoid per-entry allocations.
type iterHeap []iterEntry

func (h iterHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h iterHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].next < h[l].next {
			m = r
		}
		if h[i].next <= h[m].next {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// popTop removes the root entry.
func (h *iterHeap) popTop() {
	s := *h
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	if n > 1 {
		s[:n].siftDown(0)
	}
}

// resultItem is an answer in the fixed-size output heap (a max-heap on
// relevance: overflow emits the best answer seen so far).
type resultItem struct {
	ans *Answer
	idx int
	seq int
	sig uint64
}

type resultHeap []*resultItem

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].ans.Score != h[j].ans.Score {
		return h[i].ans.Score > h[j].ans.Score
	}
	return h[i].seq < h[j].seq // deterministic: offer order breaks score ties
}
func (h resultHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *resultHeap) Push(x interface{}) {
	it := x.(*resultItem)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// searchMultiTerm is the backward expanding search of Figure 3. cb, when
// non-nil, observes answers at emission time and may cancel the search.
// The expansion loop polls ctx every cancelCheckMask+1 iterator pops so a
// canceled context or an expired deadline stops a long-running expansion
// promptly; the context's error is then returned and no answers are.
func (s *Searcher) searchMultiTerm(ctx context.Context, ar *searchArena, sets [][]graph.NodeID, excluded map[int32]bool, o *Options, stats *Stats, cb func(*Answer) bool) ([]*Answer, error) {
	n := len(sets)

	// A node may match several terms; it gets one iterator and one origin
	// slot whose bitmask records the terms it matched.
	ar.beginOrigins(n)
	for ti, set := range sets {
		for _, node := range set {
			oi := ar.originIndex(node)
			if oi < 0 {
				oi = ar.addOrigin(node)
			}
			ar.originTerms(oi)[ti/64] |= 1 << uint(ti%64)
		}
	}
	ih := ar.ih[:0]
	for i := range ar.origins {
		it := ar.newIterator(s.g, ar.origins[i].node)
		ar.origins[i].it = it
		if _, d, ok := it.Peek(); ok {
			ih = append(ih, iterEntry{it: it, next: d})
		}
	}
	ih.init()

	// Per-visited-node term lists (v.L_i in the pseudocode) live in the
	// arena's chunked dense storage.
	ar.beginVisits()

	em := newEmitter(ar, o, stats, cb)

	if cap(ar.comboBuf) < n {
		ar.comboBuf = make([]graph.NodeID, n)
	}
	combo := ar.comboBuf[:n]

	// generate builds all new connection trees rooted at v that use origin
	// as the term-ti leaf (CrossProduct in the pseudocode).
	generate := func(v graph.NodeID, origin graph.NodeID, ti int) {
		l := ar.nodeLists(v, n)
		rootExcluded := excluded[s.g.TableOf(v)]
		// Cross product of {origin} with the other term lists.
		combo[ti] = origin
		produced := 0
		var rec func(term int) bool
		rec = func(term int) bool {
			if term == n {
				if produced >= o.MaxCombosPerVisit {
					stats.CombosTruncated = true
					return false
				}
				produced++
				stats.Generated++
				if rootExcluded {
					stats.ExcludedRoots++
					return true
				}
				if a := s.buildAnswer(ar, v, combo, o, stats); a != nil {
					em.offer(a)
				}
				return true
			}
			if term == ti {
				return rec(term + 1)
			}
			if len(l[term]) == 0 {
				return false
			}
			for _, other := range l[term] {
				combo[term] = other
				if !rec(term + 1) {
					return false
				}
			}
			return true
		}
		rec(0)
		l[ti] = append(l[ti], origin)
	}

	for len(ih) > 0 && len(em.emitted) < o.TopK && stats.Pops < o.MaxPops && !em.stopped {
		if stats.Pops&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				ar.ih = ih
				return nil, err
			}
		}
		entry := &ih[0]
		v, _, ok := entry.it.Next()
		if !ok {
			ih.popTop()
			continue
		}
		stats.Pops++
		originNode := entry.it.origin
		if _, d, more := entry.it.Peek(); more {
			entry.next = d
			ih.siftDown(0)
		} else {
			ih.popTop()
		}
		oi := ar.originIndex(originNode)
		for wi, word := range ar.originTerms(oi) {
			for word != 0 {
				ti := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				generate(v, originNode, ti)
			}
		}
	}
	em.drain()
	ar.ih = ih
	return em.finish(), nil
}

// buildAnswer materializes the connection tree rooted at v whose term-i
// leaf is combo[i], as the union of the per-iterator shortest paths. The
// paper's pseudocode treats this union as a tree, but two shortest paths
// can diverge and reconverge, giving a node two parents; we splice instead:
// once a path reaches a node already in the tree, the existing route from
// the root is reused and the walk continues from that node. Every leaf
// stays reachable from the root and the result is a genuine tree. Returns
// nil for trees pruned by the single-child-root rule.
func (s *Searcher) buildAnswer(ar *searchArena, v graph.NodeID, combo []graph.NodeID, o *Options, stats *Stats) *Answer {
	gen := ar.bumpMark()
	ar.mark[v] = gen
	var edges []TreeEdge
	scratch := ar.scratchEdges
	for _, origin := range combo {
		oi := ar.originIndex(origin)
		if oi < 0 || ar.origins[oi].it == nil {
			ar.scratchEdges = scratch[:0]
			return nil
		}
		scratch = ar.origins[oi].it.PathEdges(v, scratch[:0])
		for _, e := range scratch {
			if ar.mark[e.To] == gen {
				continue // reuse the existing root->e.To route
			}
			ar.mark[e.To] = gen
			edges = append(edges, e)
		}
	}
	ar.scratchEdges = scratch[:0]
	a := &Answer{
		Root:      v,
		Edges:     edges,
		TermNodes: append([]graph.NodeID(nil), combo...),
	}
	if len(edges) > 0 && a.rootChildren() == 1 {
		stats.SingleChildRoots++
		return nil
	}
	for _, e := range edges {
		a.Weight += e.W
	}
	sort.Slice(a.Edges, func(i, j int) bool {
		if a.Edges[i].From != a.Edges[j].From {
			return a.Edges[i].From < a.Edges[j].From
		}
		return a.Edges[i].To < a.Edges[j].To
	})
	scoreAnswer(a, s.g, o.Score)
	return a
}

// Rescore recomputes answer scores under different scoring options without
// re-running the search; the evaluation harness uses it to compare
// parameter settings over a fixed candidate pool.
func (s *Searcher) Rescore(answers []*Answer, score ScoreOptions) []*Answer {
	out := make([]*Answer, len(answers))
	for i, a := range answers {
		c := *a
		scoreAnswer(&c, s.g, score)
		out[i] = &c
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// ErrNoMatch is a helper sentinel some callers use to signal an empty
// result to their own users. Search itself returns (nil, nil) when nothing
// matches.
var ErrNoMatch = fmt.Errorf("core: no results")
