package core

import (
	"github.com/banksdb/banks/internal/graph"
)

// sspIterator is the incremental single-source shortest path iterator of
// Section 3: it runs Dijkstra from a keyword node over the *reversed*
// edges, so that the distance it reports for a node v is the weight of the
// shortest *forward* path v -> ... -> origin. Next() yields nodes in
// nondecreasing distance, lazily, one at a time — which is what lets the
// backward expanding search interleave |S| of these through a single
// iterator heap.
//
// State is held in dense NodeID-indexed arrays rather than hash maps: a
// visit-stamp array distinguishes untouched / tentative / settled nodes, so
// reusing an iterator for a new origin costs two generation bumps instead
// of four map rebuilds. Iterators are recycled through the searchArena.
type sspIterator struct {
	g      graph.View
	origin graph.NodeID

	dist    []float64      // tentative (visit==gen) or settled (visit==gen+1) distance
	parent  []graph.NodeID // next hop from node toward origin (forward direction)
	pweight []float64      // weight of the arc node -> parent[node]
	visit   []uint32       // visit state stamp; see gen
	gen     uint32         // even; visit[n]==gen → tentative, ==gen+1 → settled, else untouched
	pq      distHeap

	// Memoized replay (the batched strategy's pooled per-term frontiers):
	// with memo set, every settled (node, distance) pair is appended to
	// trail, and rewind restarts the iterator for a later query by
	// replaying trail from memory instead of re-running Dijkstra. The
	// expansion from a fixed origin over an immutable graph is
	// deterministic, so replay yields exactly the sequence (and, via the
	// persistent parent array, exactly the paths) a fresh run would; when
	// the trail runs out, live expansion resumes from the checkpoint the
	// previous query left in dist/visit/pq.
	memo   bool
	trail  []distEntry
	cursor int // replay position; == len(trail) once expanding live

	// lastArcs is how many reverse arcs the last Next() relaxed — the
	// expansion loop's unit of arc-budget accounting. trailArcs mirrors
	// trail entry-for-entry so a memoized replay charges exactly the arc
	// counts the original expansion did, keeping budget truncation
	// deterministic between cold and warm (pooled-frontier) runs.
	lastArcs  int
	trailArcs []int32
}

type distEntry struct {
	node graph.NodeID
	d    float64
	key  uint64 // stable (table, rid) identity of node; see nodeKey
}

// nodeKey packs a node's (table, rid) identity into one comparable word.
// Ties are broken on this key rather than on the NodeID so that two
// engines holding the same logical graph under different node numberings
// — a delta overlay with appended nodes versus a from-scratch rebuild
// that renumbers them into their table blocks — settle tied nodes and
// choose tied shortest-path parents identically.
func nodeKey(g graph.View, n graph.NodeID) uint64 {
	return uint64(g.TableOf(n))<<48 | uint64(g.RIDOf(n))&(1<<48-1)
}

// less orders entries by (distance, stable identity): the total order that
// makes the settling sequence independent of node numbering.
func (e distEntry) less(o distEntry) bool {
	return e.d < o.d || (e.d == o.d && e.key < o.key)
}

// distHeap is a hand-rolled binary min-heap on (d, key). container/heap
// would box every distEntry pushed through its interface{} parameters — on
// the hot path that is one allocation per relaxation.
type distHeap []distEntry

func (h *distHeap) push(e distEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].less(s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *distHeap) pop() distEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	if n > 1 {
		s[:n].siftDown(0)
	}
	return top
}

func (h distHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].less(h[l]) {
			m = r
		}
		if !h[m].less(h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// reset re-roots a (possibly recycled) iterator at origin. The generation
// bump invalidates all previous visit stamps in O(1); the stamp array is
// zeroed only on uint32 wraparound.
func (it *sspIterator) reset(g graph.View, origin graph.NodeID) {
	it.g = g
	it.origin = origin
	it.gen += 2
	if it.gen < 2 { // wrapped
		for i := range it.visit {
			it.visit[i] = 0
		}
		it.gen = 2
	}
	it.pq = it.pq[:0]
	it.dist[origin] = 0
	it.visit[origin] = it.gen
	it.pq.push(distEntry{node: origin, d: 0, key: nodeKey(g, origin)})
	it.memo = false
	it.trail = it.trail[:0]
	it.trailArcs = it.trailArcs[:0]
	it.cursor = 0
	it.lastArcs = 0
}

// rewind restarts a memoized iterator for a new query over the same origin
// and graph: the recorded settling order replays from memory, then live
// expansion continues where the previous query stopped.
func (it *sspIterator) rewind() { it.cursor = 0 }

// newSSPIterator allocates a standalone iterator (tests use this; searches
// go through searchArena.newIterator for pooling).
func newSSPIterator(g graph.View, origin graph.NodeID) *sspIterator {
	n := g.NumNodes()
	it := &sspIterator{
		dist:    make([]float64, n),
		parent:  make([]graph.NodeID, n),
		pweight: make([]float64, n),
		visit:   make([]uint32, n),
	}
	it.reset(g, origin)
	return it
}

func (it *sspIterator) settled(n graph.NodeID) bool { return it.visit[n] == it.gen+1 }

// clean drops stale heap entries (lazy deletion).
func (it *sspIterator) clean() {
	for len(it.pq) > 0 && it.settled(it.pq[0].node) {
		it.pq.pop()
	}
}

// Peek returns the next node and distance without consuming it.
func (it *sspIterator) Peek() (graph.NodeID, float64, bool) {
	if it.cursor < len(it.trail) {
		e := it.trail[it.cursor]
		return e.node, e.d, true
	}
	it.clean()
	if len(it.pq) == 0 {
		return graph.NoNode, 0, false
	}
	return it.pq[0].node, it.pq[0].d, true
}

// Next settles and returns the closest unsettled node. After settling v it
// relaxes the reverse edges into v: every forward arc u->v extends the
// forward path u -> v -> ... -> origin.
func (it *sspIterator) Next() (graph.NodeID, float64, bool) {
	if it.cursor < len(it.trail) {
		e := it.trail[it.cursor]
		it.lastArcs = int(it.trailArcs[it.cursor])
		it.cursor++
		return e.node, e.d, true
	}
	it.clean()
	if len(it.pq) == 0 {
		it.lastArcs = 0
		return graph.NoNode, 0, false
	}
	top := it.pq.pop()
	v, d := top.node, top.d
	it.dist[v] = d
	it.visit[v] = it.gen + 1
	vkey := nodeKey(it.g, v)
	in := it.g.In(v)
	it.lastArcs = len(in)
	if it.memo {
		it.trail = append(it.trail, top)
		it.trailArcs = append(it.trailArcs, int32(len(in)))
		it.cursor = len(it.trail)
	}
	for _, e := range in {
		u, w := e.To, e.W
		st := it.visit[u]
		if st == it.gen+1 {
			continue // settled
		}
		nd := d + w
		if st != it.gen || nd < it.dist[u] {
			it.dist[u] = nd
			it.visit[u] = it.gen
			it.parent[u] = v
			it.pweight[u] = w
			it.pq.push(distEntry{node: u, d: nd, key: nodeKey(it.g, u)})
		} else if nd == it.dist[u] && vkey < nodeKey(it.g, it.parent[u]) {
			// Equal-cost path through a smaller-identity parent: adopt it,
			// so the chosen shortest-path tree is canonical in (table, rid)
			// terms and identical across node numberings. Every candidate
			// parent settles (strictly positive weights) before u pops, so
			// the final choice is order-independent. No push: u's tentative
			// distance is unchanged.
			it.parent[u] = v
			it.pweight[u] = w
		}
	}
	return v, d, true
}

// Dist returns the settled distance of v (forward path weight v->origin).
func (it *sspIterator) Dist(v graph.NodeID) (float64, bool) {
	if !it.settled(v) {
		return 0, false
	}
	return it.dist[v], true
}

// PathEdges appends to dst the directed forward edges of the shortest path
// v -> ... -> origin. v must be settled.
func (it *sspIterator) PathEdges(v graph.NodeID, dst []TreeEdge) []TreeEdge {
	for v != it.origin {
		if !it.settled(v) {
			return dst // origin unreachable; cannot happen for settled v
		}
		p := it.parent[v]
		dst = append(dst, TreeEdge{From: v, To: p, W: it.pweight[v]})
		v = p
	}
	return dst
}
