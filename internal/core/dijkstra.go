package core

import (
	"container/heap"

	"github.com/banksdb/banks/internal/graph"
)

// sspIterator is the incremental single-source shortest path iterator of
// Section 3: it runs Dijkstra from a keyword node over the *reversed*
// edges, so that the distance it reports for a node v is the weight of the
// shortest *forward* path v -> ... -> origin. Next() yields nodes in
// nondecreasing distance, lazily, one at a time — which is what lets the
// backward expanding search interleave |S| of these through a single
// iterator heap.
type sspIterator struct {
	g      *graph.Graph
	origin graph.NodeID

	dist    map[graph.NodeID]float64      // settled distances
	parent  map[graph.NodeID]graph.NodeID // next hop from node toward origin (forward direction)
	pweight map[graph.NodeID]float64      // weight of the arc node -> parent[node]
	tent    map[graph.NodeID]float64      // best tentative distances seen so far
	pq      distHeap
}

type distEntry struct {
	node graph.NodeID
	d    float64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func newSSPIterator(g *graph.Graph, origin graph.NodeID) *sspIterator {
	it := &sspIterator{
		g:       g,
		origin:  origin,
		dist:    make(map[graph.NodeID]float64),
		parent:  make(map[graph.NodeID]graph.NodeID),
		pweight: make(map[graph.NodeID]float64),
		tent:    make(map[graph.NodeID]float64),
	}
	it.tent[origin] = 0
	heap.Push(&it.pq, distEntry{node: origin, d: 0})
	return it
}

// clean drops stale heap entries (lazy deletion).
func (it *sspIterator) clean() {
	for len(it.pq) > 0 {
		top := it.pq[0]
		if _, settled := it.dist[top.node]; settled {
			heap.Pop(&it.pq)
			continue
		}
		return
	}
}

// Peek returns the next node and distance without consuming it.
func (it *sspIterator) Peek() (graph.NodeID, float64, bool) {
	it.clean()
	if len(it.pq) == 0 {
		return graph.NoNode, 0, false
	}
	return it.pq[0].node, it.pq[0].d, true
}

// Next settles and returns the closest unsettled node. After settling v it
// relaxes the reverse edges into v: every forward arc u->v extends the
// forward path u -> v -> ... -> origin.
func (it *sspIterator) Next() (graph.NodeID, float64, bool) {
	it.clean()
	if len(it.pq) == 0 {
		return graph.NoNode, 0, false
	}
	top := heap.Pop(&it.pq).(distEntry)
	v, d := top.node, top.d
	it.dist[v] = d
	for _, e := range it.g.In(v) {
		u, w := e.To, e.W
		if _, settled := it.dist[u]; settled {
			continue
		}
		nd := d + w
		if best, seen := it.tent[u]; !seen || nd < best {
			it.tent[u] = nd
			it.parent[u] = v
			it.pweight[u] = w
			heap.Push(&it.pq, distEntry{node: u, d: nd})
		}
	}
	return v, d, true
}

// Dist returns the settled distance of v (forward path weight v->origin).
func (it *sspIterator) Dist(v graph.NodeID) (float64, bool) {
	d, ok := it.dist[v]
	return d, ok
}

// PathEdges appends to dst the directed forward edges of the shortest path
// v -> ... -> origin. v must be settled.
func (it *sspIterator) PathEdges(v graph.NodeID, dst []TreeEdge) []TreeEdge {
	for v != it.origin {
		p, ok := it.parent[v]
		if !ok {
			return dst // origin unreachable; cannot happen for settled v
		}
		dst = append(dst, TreeEdge{From: v, To: p, W: it.pweight[v]})
		v = p
	}
	return dst
}
