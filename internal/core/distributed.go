package core

// DistributedStrategy: the registry entry for the scatter-gather executor
// of internal/cluster. The real fan-out lives outside this package — a
// cluster front door (banks.Cluster) intercepts Options.Strategy ==
// StrategyDistributed, scatters the query to its partitions (each of
// which runs the plain backward strategy against its partition-local
// engine) and merges the per-partition answers with the same canonical
// (table, rid) tie-break the emitter uses. Registering the name here
// keeps strategy selection uniform: ValidateStrategy accepts it,
// Strategies lists it, and a plain single-engine Searcher asked to run it
// fails with a directed error instead of a registry miss.

import (
	"context"
	"errors"
)

// StrategyDistributed is the scatter-gather strategy over a partitioned
// cluster. It is only executable through a cluster front door; selecting
// it on a single-engine System returns an error.
const StrategyDistributed = "distributed"

// DistributedStrategy is the registry placeholder for the cluster
// scatter-gather executor.
type DistributedStrategy struct{}

// Name implements Strategy.
func (DistributedStrategy) Name() string { return StrategyDistributed }

func (DistributedStrategy) resolver(s *Searcher) termResolver { return cacheResolver{s} }

func (DistributedStrategy) run(ctx context.Context, ex *exec) ([]*Answer, error) {
	return nil, ErrNotDistributed
}

// ErrNotDistributed reports that the "distributed" strategy was selected
// on an engine that is not a partitioned cluster front door.
var ErrNotDistributed = errors.New(
	`core: strategy "distributed" requires a partitioned cluster front door (banks.OpenCluster); a single engine cannot scatter-gather`)

func init() {
	RegisterStrategy(DistributedStrategy{})
}
