package core

import (
	"context"
	"errors"
)

// Streaming search: Section 3 motivates generating answers incrementally
// "to avoid generating answers of low relevance that the user may never
// look at". SearchStream delivers each answer the moment the output heap
// emits it, letting callers render results progressively and cancel early.

// ErrStopped is returned by SearchStream when the callback cancels the
// search; it signals deliberate termination, not failure.
var ErrStopped = errors.New("core: search stopped by caller")

// SearchStream runs the backward expanding search and calls fn for every
// emitted answer, in emission (approximate relevance) order with Rank
// already assigned. Single-term and multi-term queries share one emission
// contract: answers flow through the fixed-size output heap of
// opts.HeapSize, so ordering is exact only when the candidate count stays
// within the heap. Returning false from fn cancels the search;
// SearchStream then returns ErrStopped. At most opts.TopK answers are
// delivered.
func (s *Searcher) SearchStream(terms []string, opts *Options, fn func(*Answer) bool) error {
	stopped := false
	cb := func(a *Answer) bool {
		if !fn(a) {
			stopped = true
			return false
		}
		return true
	}
	if _, _, err := s.Query(context.Background(), Request{Terms: terms}, opts, cb); err != nil {
		return err
	}
	if stopped {
		return ErrStopped
	}
	return nil
}
