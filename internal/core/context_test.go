package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestQueryCanceledContext asserts a context canceled before the call
// returns context.Canceled without producing answers.
func TestQueryCanceledContext(t *testing.T) {
	f := newBibFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	answers, _, err := f.s.Query(ctx, Request{Terms: []string{"soumen", "sunita"}}, defaultBibOptions(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if answers != nil {
		t.Errorf("answers = %v, want nil", answers)
	}
}

// TestQueryCanceledSingleTerm covers the single-term path's check.
func TestQueryCanceledSingleTerm(t *testing.T) {
	f := newBibFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := f.s.Query(ctx, Request{Terms: []string{"mohan"}}, defaultBibOptions(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQueryExpiredDeadline asserts an already-expired deadline surfaces as
// context.DeadlineExceeded.
func TestQueryExpiredDeadline(t *testing.T) {
	f := newBibFixture(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := f.s.Query(ctx, Request{Terms: []string{"soumen", "sunita"}}, defaultBibOptions(), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestQueryUnifiedWrappers asserts the legacy helpers and the unified
// entry point agree on the same request.
func TestQueryUnifiedWrappers(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	legacy, err := f.s.Search([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	unified, st, err := f.s.Query(context.Background(), Request{Terms: []string{"soumen", "sunita"}}, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != len(unified) {
		t.Fatalf("answer counts differ: %d vs %d", len(legacy), len(unified))
	}
	for i := range legacy {
		if legacy[i].Root != unified[i].Root || legacy[i].Score != unified[i].Score {
			t.Errorf("answer %d differs", i)
		}
	}
	if st == nil || st.Pops == 0 || len(st.Terms) != 2 {
		t.Errorf("stats = %+v", st)
	}

	qual, err := f.s.SearchQualified(f.db, []string{"author:soumen", "author:sunita"}, false, o)
	if err != nil {
		t.Fatal(err)
	}
	qualU, _, err := f.s.Query(context.Background(),
		Request{Terms: []string{"author:soumen", "author:sunita"}, Qualified: true, DB: f.db}, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(qual) != len(qualU) {
		t.Fatalf("qualified counts differ: %d vs %d", len(qual), len(qualU))
	}
}
