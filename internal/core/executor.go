package core

// The staged query executor. A query runs as an explicit pipeline:
//
//	normalize -> resolve (term -> match set, via the strategy's
//	admission path) -> seed origins -> expand -> emit
//
// The expansion stages live behind the Strategy interface, so the §3
// backward expanding search (BackwardStrategy, the default) and the
// concurrency-oriented batched path (BatchedStrategy: single-flight term
// resolution plus pooled per-term frontiers) are interchangeable
// executors over the same resolution and emission machinery — and
// alternative executors (e.g. a disk-aware one, as EMBANKS motivates) can
// register under new names without touching the pipeline.

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
)

// Names of the built-in strategies.
const (
	// StrategyBackward is the paper's §3 backward expanding search: one
	// fresh shortest-path iterator per keyword node, per query.
	StrategyBackward = "backward"
	// StrategyBatched is the concurrency-oriented executor: term
	// resolution is single-flighted across concurrent queries (identical
	// in-flight lookups coalesce on top of the match cache) and per-term
	// frontiers come from a shared pool of memoized iterators, so a burst
	// of queries sharing terms shares resolution and expansion work.
	// Answers are identical to StrategyBackward.
	StrategyBatched = "batched"
)

// Strategy is one pluggable execution path of the staged query pipeline.
// A strategy contributes two stages: the term-resolution path (how a
// keyword becomes a match set) and the expansion stage (how resolved
// match sets become emitted connection trees). Implementations live in
// this package and register through RegisterStrategy.
type Strategy interface {
	// Name is the registry key threaded through Options.Strategy.
	Name() string
	// resolver returns the term -> match-set resolution path.
	resolver(s *Searcher) termResolver
	// run executes the expansion stage over the resolved sets.
	run(ctx context.Context, ex *exec) ([]*Answer, error)
}

// termResolver is the stage-2 resolution path from a normalized term to
// its index match set. Strategies differ in admission: the direct path
// consults the snapshot's match cache, the batched path additionally
// coalesces concurrent identical lookups.
type termResolver interface {
	lookup(term string) index.Match
	lookupPrefix(term string) []graph.NodeID
}

// cacheResolver is the direct path: match cache, then index.
type cacheResolver struct{ s *Searcher }

func (r cacheResolver) lookup(term string) index.Match {
	return r.s.cache.Lookup(r.s.ix, r.s.epoch, term)
}

func (r cacheResolver) lookupPrefix(term string) []graph.NodeID {
	return r.s.cache.LookupPrefix(r.s.ix, r.s.epoch, term)
}

// flightResolver is the admission path: cache, then single-flight, then
// index — concurrent identical lookups share one resolution.
type flightResolver struct{ s *Searcher }

func (r flightResolver) lookup(term string) index.Match {
	return r.s.flight.Lookup(r.s.cache, r.s.ix, r.s.epoch, term)
}

func (r flightResolver) lookupPrefix(term string) []graph.NodeID {
	return r.s.flight.LookupPrefix(r.s.cache, r.s.ix, r.s.epoch, term)
}

// exec carries one query's state from the executor's resolution stage to
// the strategy's expansion stage.
type exec struct {
	s        *Searcher
	ar       *searchArena
	o        *Options
	stats    *Stats
	sets     [][]graph.NodeID
	excluded map[int32]bool
	cb       func(*Answer) bool
	// faultBase is the fault meter's reading at query start; bytesFaulted
	// deltas against it to charge only this query's window (engine-global
	// meter, so concurrent queries' faults overlap — safety valve, not
	// precise accounting).
	faultBase int64
}

// bytesFaulted returns store bytes faulted since the query started; 0
// without an attached fault meter.
func (ex *exec) bytesFaulted() int64 {
	if ex.s.fault == nil {
		return 0
	}
	return ex.s.fault() - ex.faultBase
}

// The strategy registry. Built-ins are always present; RegisterStrategy
// adds more.
var (
	strategyMu sync.RWMutex
	strategies = map[string]Strategy{
		StrategyBackward: BackwardStrategy{},
		StrategyBatched:  BatchedStrategy{},
	}
)

// RegisterStrategy installs st under st.Name() for selection through
// Options.Strategy, replacing any previous strategy of that name.
func RegisterStrategy(st Strategy) {
	strategyMu.Lock()
	defer strategyMu.Unlock()
	strategies[st.Name()] = st
}

// Strategies returns the registered strategy names, sorted.
func Strategies() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	names := make([]string, 0, len(strategies))
	for name := range strategies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ValidateStrategy reports whether name selects a registered strategy
// ("" selects the default).
func ValidateStrategy(name string) error {
	_, err := strategyFor(name)
	return err
}

func strategyFor(name string) (Strategy, error) {
	if name == "" {
		name = StrategyBackward
	}
	strategyMu.RLock()
	st, ok := strategies[name]
	strategyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown strategy %q (have %s)", name, strings.Join(Strategies(), ", "))
	}
	return st, nil
}

// cancelCheckMask sets how often the expansion loops poll ctx.Done():
// every cancelCheckMask+1 iterator pops. 256 pops is a few microseconds
// of work, so cancellation latency stays far below any plausible
// deadline while the steady-state cost of the check is noise.
const cancelCheckMask = 256 - 1

// Search runs the backward expanding search for the given terms.
func (s *Searcher) Search(terms []string, opts *Options) ([]*Answer, error) {
	answers, _, err := s.Query(context.Background(), Request{Terms: terms}, opts, nil)
	return answers, err
}

// SearchStats is Search plus execution statistics.
func (s *Searcher) SearchStats(terms []string, opts *Options) ([]*Answer, *Stats, error) {
	return s.Query(context.Background(), Request{Terms: terms}, opts, nil)
}

// Query is the staged query executor: it resolves the request's terms to
// node sets (plain, qualified or prefix matching per the request) through
// the selected strategy's admission path, hands the resolved sets to the
// strategy's expansion stage under ctx, and returns the emitted answers
// with execution statistics. cb, when non-nil, sees every answer at
// emission time and may cancel by returning false (the search then stops
// cleanly with the answers emitted so far). When ctx is canceled or its
// deadline passes, the expansion loop stops within a few hundred iterator
// pops and Query returns ctx's error.
func (s *Searcher) Query(ctx context.Context, req Request, opts *Options, cb func(*Answer) bool) ([]*Answer, *Stats, error) {
	ar := s.acquireArena()
	defer s.releaseArena(ar)
	answers, stats, err := s.queryInArena(ctx, req, opts, cb, ar)
	// The arena goes back to the pool on return, so everything the caller
	// keeps must be copied off it. The answers themselves are heap-built
	// here (the arena slabs only back Session queries).
	st := new(Stats)
	*st = *stats
	st.Terms = append([]string(nil), stats.Terms...)
	st.MatchedNodes = append([]int(nil), stats.MatchedNodes...)
	var out []*Answer
	if len(answers) > 0 {
		out = append(out, answers...)
	}
	return out, st, err
}

// queryInArena runs the full pipeline with every per-query structure drawn
// from ar. The returned answers and stats are arena-resident in borrow
// mode and must be consumed before the arena serves another query.
func (s *Searcher) queryInArena(ctx context.Context, req Request, opts *Options, cb func(*Answer) bool, ar *searchArena) ([]*Answer, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ar.beginQuery()
	o := opts.withDefaultsInto(&ar.optsBuf)
	stats := &ar.statsBuf
	*stats = Stats{}

	var faultBase int64
	if s.fault != nil {
		faultBase = s.fault()
	}
	answers, err := s.runStages(ctx, req, o, cb, ar, stats, faultBase)
	if s.fault != nil {
		stats.BytesFaulted = s.fault() - faultBase
	}
	return answers, stats, err
}

func (s *Searcher) runStages(ctx context.Context, req Request, o *Options, cb func(*Answer) bool, ar *searchArena, stats *Stats, faultBase int64) ([]*Answer, error) {
	strat, err := strategyFor(o.Strategy)
	if err != nil {
		return nil, err
	}

	// Stage 1: normalize terms.
	clean := ar.cleanBuf
	for _, t := range req.Terms {
		t = strings.TrimSpace(strings.ToLower(t))
		if t != "" {
			clean = append(clean, t)
		}
	}
	ar.cleanBuf = clean
	if len(clean) == 0 {
		return nil, errors.New("core: empty query")
	}

	// Stage 2: locate S_i for each term (§3 step 1) through the
	// strategy's resolution path.
	res := strat.resolver(s)
	sets := ar.setsBuf
	active := ar.activeBuf
	for _, term := range clean {
		var set []graph.NodeID
		if qual, bare, ok := parseQualifiedTerm(term); req.Qualified && ok {
			set = s.matchQualified(ar, res, req.DB, qual, bare, o, stats)
			canonicalizeSet(s.g, set)
		} else {
			buf := ar.termSet(len(sets))
			buf = s.matchTerm(ar, res, term, o, stats, buf)
			canonicalizeSet(s.g, buf)
			ar.termSets[len(sets)] = buf // retain any growth
			set = buf
			if len(set) == 0 && req.Prefix {
				// Owned by the prefix cache — must not be reordered in
				// place (node-id order, which is already canonical for
				// every view that serves prefix lookups).
				set = res.lookupPrefix(term)
			}
		}
		if len(set) == 0 {
			if o.RequireAllTerms {
				ar.setsBuf, ar.activeBuf = sets, active
				stats.Terms = active
				return nil, nil
			}
			stats.TermsDropped++
			continue
		}
		sets = append(sets, set)
		active = append(active, term)
	}
	ar.setsBuf, ar.activeBuf = sets, active
	stats.Terms = active
	matched := ar.matchedBuf
	for _, set := range sets {
		matched = append(matched, len(set))
	}
	ar.matchedBuf = matched
	stats.MatchedNodes = matched
	if len(sets) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stages 3-5: seed origins, expand, emit — the strategy's province.
	ex := &ar.exBuf
	*ex = exec{
		s:         s,
		ar:        ar,
		o:         o,
		stats:     stats,
		sets:      sets,
		excluded:  s.excludedTables(ar, o),
		cb:        cb,
		faultBase: faultBase,
	}
	// Resolution alone may have blown the byte budget (cold store, huge
	// posting lists): cut off before expansion starts.
	if o.Budget.MaxBytesFaulted > 0 && ex.bytesFaulted() >= o.Budget.MaxBytesFaulted {
		stats.BudgetExhausted = true
		stats.BudgetReason = "bytes"
		return nil, nil
	}
	return strat.run(ctx, ex)
}

// emitter drives the fixed-size output heap of §3 shared by the single-
// and multi-term paths: candidate answers are offered, deduplicated by
// hashed tree signature, buffered up to HeapSize, and emitted best-first
// on overflow and during the final drain.
type emitter struct {
	ar      *searchArena
	o       *Options
	stats   *Stats
	cb      func(*Answer) bool
	rh      resultHeap
	inHeap  map[uint64]*resultItem
	outSig  map[uint64]bool
	seq     int
	emitted []*Answer
	stopped bool
}

// newEmitter readies the arena-resident emitter: heap, emitted list and
// item slab all come from ar (reset by beginQuery), so steady-state
// emission allocates nothing.
func newEmitter(ar *searchArena, o *Options, stats *Stats, cb func(*Answer) bool) *emitter {
	em := &ar.emBuf
	*em = emitter{
		ar:      ar,
		o:       o,
		stats:   stats,
		cb:      cb,
		rh:      ar.rhBuf,
		inHeap:  ar.inHeap,
		outSig:  ar.outSig,
		emitted: ar.emittedBuf,
	}
	return em
}

func (em *emitter) emitBest() {
	item := heap.Pop(&em.rh).(*resultItem)
	delete(em.inHeap, item.sig)
	em.outSig[item.sig] = true
	em.emitted = append(em.emitted, item.ans)
	item.ans.Rank = len(em.emitted)
	if em.cb != nil && !em.cb(item.ans) {
		em.stopped = true
	}
}

func (em *emitter) offer(a *Answer) {
	if em.stopped {
		// The callback cancelled the search mid-visit: the expansion loop
		// only notices at its next pop, so candidates from the rest of
		// this visit still arrive here. Drop them — emitting would call
		// the callback again after it returned false (for QueryIter that
		// is a range-function panic), and buffering them would leak
		// answers the caller never saw into the partial results.
		return
	}
	sig := a.sigHash()
	if em.outSig[sig] {
		// A duplicate of an already-output answer is discarded even if its
		// relevance is higher (§3).
		em.stats.Duplicates++
		return
	}
	if prev, ok := em.inHeap[sig]; ok {
		em.stats.Duplicates++
		if a.Score > prev.ans.Score {
			prev.ans = a
			heap.Fix(&em.rh, prev.idx)
		}
		return
	}
	item := em.ar.newResultItem(a, sig, em.seq)
	em.seq++
	if len(em.rh) >= em.o.HeapSize {
		em.emitBest()
	}
	heap.Push(&em.rh, item)
	em.inHeap[sig] = item
}

// drain emits buffered answers best-first until TopK is reached or the
// heap empties.
func (em *emitter) drain() {
	for len(em.rh) > 0 && len(em.emitted) < em.o.TopK && !em.stopped {
		em.emitBest()
	}
}

// finish trims the overshoot (heap overflow during a single node visit can
// emit a result or two beyond TopK), fixes ranks, and hands the grown
// heap/emitted backing back to the arena for the next query.
func (em *emitter) finish() []*Answer {
	if len(em.emitted) > em.o.TopK {
		em.emitted = em.emitted[:em.o.TopK]
	}
	for i, a := range em.emitted {
		a.Rank = i + 1
	}
	em.ar.rhBuf = em.rh[:0]
	em.ar.emittedBuf = em.emitted
	return em.emitted
}

// iterEntry is one shortest-path iterator in the iterator heap, keyed by
// the distance of the next node it will output.
// canonicalizeSet orders a term's match set by stable (table, rid)
// identity. Posting lists arrive in node-id order, which coincides with
// canonical order under the default layout but not under a build-time
// renumber (graph.LayoutDegree) or an overlay's appended nodes. Origin
// slot numbering, iterator scheduling and the emission sequence all
// inherit this order, so pinning it here is what makes answers — and
// which of several equal-scored answers survive the output heap —
// independent of node numbering. The sortedness pre-check keeps the
// common already-canonical case at a linear scan.
func canonicalizeSet(g graph.View, set []graph.NodeID) {
	cmp := func(a, b graph.NodeID) int {
		ka, kb := nodeKey(g, a), nodeKey(g, b)
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		}
		return 0
	}
	if !slices.IsSortedFunc(set, cmp) {
		slices.SortFunc(set, cmp)
	}
}

type iterEntry struct {
	it   *sspIterator
	next float64
	key  uint64 // stable (table, rid) identity of the origin; see nodeKey
}

// before orders entries by (next distance, stable origin identity): with
// match sets canonicalized the whole iterator schedule — and therefore
// emission sequence — is independent of node numbering.
func (e iterEntry) before(o iterEntry) bool {
	return e.next < o.next || (e.next == o.next && e.key < o.key)
}

// iterHeap is a hand-rolled binary min-heap of iterator entries, stored by
// value to avoid per-entry allocations.
type iterHeap []iterEntry

func (h iterHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h iterHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].before(h[l]) {
			m = r
		}
		if !h[m].before(h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// popTop removes the root entry.
func (h *iterHeap) popTop() {
	s := *h
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	if n > 1 {
		s[:n].siftDown(0)
	}
}

// resultItem is an answer in the fixed-size output heap (a max-heap on
// relevance: overflow emits the best answer seen so far).
type resultItem struct {
	ans *Answer
	idx int
	seq int
	sig uint64
}

type resultHeap []*resultItem

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].ans.Score != h[j].ans.Score {
		return h[i].ans.Score > h[j].ans.Score
	}
	return h[i].seq < h[j].seq // deterministic: offer order breaks score ties
}
func (h resultHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *resultHeap) Push(x interface{}) {
	it := x.(*resultItem)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
