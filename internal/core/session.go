package core

import "context"

// Session is the zero-allocation query interface of a Searcher: it owns
// one searchArena for its whole lifetime and runs every query in borrow
// mode, so answers, their edge and term-node lists, the stats block and
// the result slice are all carved from arena-owned storage. In steady
// state (after the arena's buffers have grown to the workload's high-water
// mark) a Session query performs no heap allocation at all.
//
// The price is a strict borrowing contract: everything a query returns —
// the []*Answer slice, each Answer and its slices, and the *Stats — is
// valid only until the next Query or Close call on the same Session.
// Callers that need results to outlive the next query must copy them.
// A Session is single-threaded: it must not be used from two goroutines
// concurrently (use one Session per worker; the Searcher itself remains
// safe to share).
type Session struct {
	s  *Searcher
	ar *searchArena
}

// NewSession checks a dedicated arena out of the Searcher's pool and
// returns a Session bound to it. Close returns the arena; an unclosed
// Session simply keeps its arena out of circulation (it is collected with
// the Session, so forgetting Close wastes memory, not correctness).
func (s *Searcher) NewSession() *Session {
	ar := s.acquireArena()
	ar.borrow = true
	return &Session{s: s, ar: ar}
}

// Query is Searcher.Query under the Session's borrowing contract: the
// returned answers and stats live in the Session's arena and are
// invalidated by the next Query or Close call.
func (ss *Session) Query(ctx context.Context, req Request, opts *Options, cb func(*Answer) bool) ([]*Answer, *Stats, error) {
	return ss.s.queryInArena(ctx, req, opts, cb, ss.ar)
}

// Search is the terms-only convenience form of Query (borrowed results).
func (ss *Session) Search(terms []string, opts *Options) ([]*Answer, error) {
	answers, _, err := ss.Query(context.Background(), Request{Terms: terms}, opts, nil)
	return answers, err
}

// Close returns the Session's arena to the Searcher's pool. The Session
// must not be used afterwards; outstanding borrowed results are
// invalidated.
func (ss *Session) Close() {
	if ss.ar == nil {
		return
	}
	ss.ar.borrow = false
	ss.s.releaseArena(ss.ar)
	ss.ar = nil
	ss.s = nil
}
