package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
)

// batchedBibFixture wires the bibliography fixture with the full batched
// stack: match cache, single-flight group, frontier pool.
func batchedBibFixture(t *testing.T, poolIters int) *fixture {
	t.Helper()
	f := newBibFixture(t)
	f.s.WithMatchCache(index.NewMatchCache(1 << 20)).
		WithFlightGroup(index.NewFlightGroup()).
		WithFrontierPool(poolIters)
	return f
}

func batchedOptions() *Options {
	o := defaultBibOptions()
	o.Strategy = StrategyBatched
	return o
}

// TestUnknownStrategyErrors pins the failure mode for a typo'd strategy
// name: an error naming the registered strategies, not a silent default.
func TestUnknownStrategyErrors(t *testing.T) {
	f := newBibFixture(t)
	o := DefaultOptions()
	o.Strategy = "bogus"
	_, _, err := f.s.Query(context.Background(), Request{Terms: []string{"mohan"}}, o, nil)
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), StrategyBackward) {
		t.Errorf("err = %v, want the bad name and the known strategies", err)
	}
}

// TestStrategiesRegistry checks both built-ins are registered and that
// ValidateStrategy accepts them (and the empty default).
func TestStrategiesRegistry(t *testing.T) {
	names := Strategies()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	if !have[StrategyBackward] || !have[StrategyBatched] {
		t.Fatalf("registered strategies = %v", names)
	}
	for _, n := range []string{"", StrategyBackward, StrategyBatched} {
		if err := ValidateStrategy(n); err != nil {
			t.Errorf("ValidateStrategy(%q) = %v", n, err)
		}
	}
	if err := ValidateStrategy("nope"); err == nil {
		t.Error("ValidateStrategy accepted an unknown name")
	}
}

// TestBatchedMatchesBackwardSequential runs every bibliography query under
// both strategies and requires identical answers and execution traces.
func TestBatchedMatchesBackwardSequential(t *testing.T) {
	back := newBibFixture(t)
	// The batched searcher must share the backward one's graph/index
	// snapshot (fixture builds are not node-id deterministic).
	bat := &fixture{db: back.db, g: back.g, ix: back.ix,
		s: NewSearcher(back.g, back.ix).
			WithMatchCache(index.NewMatchCache(1 << 20)).
			WithFlightGroup(index.NewFlightGroup()).
			WithFrontierPool(DefaultFrontierPoolIters)}
	queries := [][]string{
		{"soumen", "sunita"},
		{"soumen", "sunita", "byron"},
		{"mohan"},
		{"mohan", "aries"},
		{"sunita", "mining"},
	}
	// Twice: the second pass replays warm frontiers.
	for pass := 0; pass < 2; pass++ {
		for _, terms := range queries {
			want, wstats, err := back.s.SearchStats(terms, defaultBibOptions())
			if err != nil {
				t.Fatal(err)
			}
			got, gstats, err := bat.s.SearchStats(terms, batchedOptions())
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != len(got) {
				t.Fatalf("pass %d %v: %d answers backward vs %d batched", pass, terms, len(want), len(got))
			}
			for i := range want {
				if want[i].Signature() != got[i].Signature() || want[i].Score != got[i].Score {
					t.Errorf("pass %d %v rank %d: %s/%.9f vs %s/%.9f",
						pass, terms, i+1, want[i].Signature(), want[i].Score, got[i].Signature(), got[i].Score)
				}
			}
			if wstats.Pops != gstats.Pops || wstats.Generated != gstats.Generated {
				t.Errorf("pass %d %v: trace differs, pops %d vs %d, generated %d vs %d",
					pass, terms, wstats.Pops, gstats.Pops, wstats.Generated, gstats.Generated)
			}
		}
	}
	if bat.s.FrontierReuses() == 0 {
		t.Error("warm pass never reused a pooled frontier")
	}
}

// TestBatchedConcurrentBurst hammers the batched strategy from many
// goroutines sharing the same two terms — under -race this is the
// concurrency contract of the frontier pool and the flight group — and
// checks every burst result against the sequential backward answers.
func TestBatchedConcurrentBurst(t *testing.T) {
	f := batchedBibFixture(t, DefaultFrontierPoolIters)
	want, err := f.s.Search([]string{"soumen", "sunita"}, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no baseline answers")
	}

	const workers, reps = 8, 40
	var wg sync.WaitGroup
	fail := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				got, err := f.s.Search([]string{"soumen", "sunita"}, batchedOptions())
				if err != nil {
					fail <- err.Error()
					return
				}
				if len(got) != len(want) {
					fail <- "answer count changed under concurrency"
					return
				}
				for i := range want {
					if want[i].Signature() != got[i].Signature() || want[i].Score != got[i].Score {
						fail <- "answer " + want[i].Signature() + " changed under concurrency"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if f.s.FrontierReuses() == 0 {
		t.Error("burst never reused a pooled frontier")
	}
}

// TestFrontierPoolBounded: the pool never holds more than its capacity,
// evicting oldest entries, and disabling it (<= 0) keeps everything on
// the arena path.
func TestFrontierPoolBounded(t *testing.T) {
	f := batchedBibFixture(t, 2)
	queries := [][]string{
		{"soumen", "sunita"},
		{"mohan", "aries"},
		{"sunita", "mining"},
		{"soumen", "sunita", "byron"},
	}
	for _, terms := range queries {
		if _, err := f.s.Search(terms, batchedOptions()); err != nil {
			t.Fatal(err)
		}
	}
	if n := f.s.frontiers.size(); n > 2 {
		t.Errorf("pool holds %d iterators, cap 2", n)
	}

	off := newBibFixture(t)
	off.s.WithFrontierPool(0)
	if off.s.frontiers != nil {
		t.Error("WithFrontierPool(0) should disable pooling")
	}
	answers, err := off.s.Search([]string{"soumen", "sunita"}, batchedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Error("pool-less batched search lost its answers")
	}
	if off.s.FrontierReuses() != 0 {
		t.Error("disabled pool reports reuses")
	}
}

// TestIteratorReplayMatchesFresh pins the memo/replay contract at the
// iterator level: a memoized iterator replayed from its trail yields the
// same (node, distance) sequence and the same paths as a fresh one.
func TestIteratorReplayMatchesFresh(t *testing.T) {
	f := newBibFixture(t)
	origin := f.node(t, "Author", "SoumenC")

	fresh := newSSPIterator(f.g, origin)
	memo := newSSPIterator(f.g, origin)
	memo.memo = true

	type step struct {
		n graph.NodeID
		d float64
	}
	var want []step
	for {
		n, d, ok := fresh.Next()
		if !ok {
			break
		}
		want = append(want, step{n, d})
	}
	// First run records the trail (stop partway to exercise the
	// checkpoint continuation on replay).
	half := len(want) / 2
	for i := 0; i < half; i++ {
		if n, d, ok := memo.Next(); !ok || n != want[i].n || d != want[i].d {
			t.Fatalf("memoized run diverged at %d: (%d, %v, %v)", i, n, d, ok)
		}
	}
	// Replay the prefix, then continue live past the checkpoint.
	memo.rewind()
	for i, w := range want {
		n, d, ok := memo.Next()
		if !ok || n != w.n || d != w.d {
			t.Fatalf("replay diverged at %d: got (%d, %v, %v), want (%d, %v)", i, n, d, ok, w.n, w.d)
		}
		var freshEdges, replayEdges []TreeEdge
		freshEdges = fresh.PathEdges(n, freshEdges)
		replayEdges = memo.PathEdges(n, replayEdges)
		if len(freshEdges) != len(replayEdges) {
			t.Fatalf("path lengths differ at %d", i)
		}
		for j := range freshEdges {
			if freshEdges[j] != replayEdges[j] {
				t.Fatalf("path edge %d differs at step %d", j, i)
			}
		}
	}
	if _, _, ok := memo.Next(); ok {
		t.Error("replayed iterator outlived the fresh one")
	}
}
