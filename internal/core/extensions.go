package core

import (
	"context"
	"sort"
	"strings"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

// This file implements the extensions Section 7 of the paper plans:
//
//   - attribute-qualified terms such as "author:levy", restricting a
//     keyword to tuples of a named relation or to a named attribute;
//   - approximate (prefix) keyword matching;
//   - answer summarization: grouping results that share the same tree
//     structure over the schema.

// parseQualifiedTerm splits "qual:term" into its parts; ok is false for
// plain terms.
func parseQualifiedTerm(term string) (qual, bare string, ok bool) {
	i := strings.IndexByte(term, ':')
	if i <= 0 || i == len(term)-1 {
		return "", term, false
	}
	return term[:i], term[i+1:], true
}

// matchQualified resolves a "qual:term" search term: the qualifier must
// name a relation (all matching tuples of that relation) or an attribute
// (tuples whose that attribute contains the term). It falls back to nil
// when the qualifier names nothing.
func (s *Searcher) matchQualified(ar *searchArena, res termResolver, db *sqldb.Database, qual, term string, o *Options, stats *Stats) []graph.NodeID {
	candidates := s.matchTerm(ar, res, term, o, stats, nil)
	if len(candidates) == 0 {
		return nil
	}
	// Relation qualifier: keep matches from that table.
	if tid := s.g.TableID(qual); tid >= 0 {
		var out []graph.NodeID
		for _, n := range candidates {
			if s.g.TableOf(n) == tid {
				out = append(out, n)
			}
		}
		return out
	}
	if db == nil {
		return nil
	}
	// Attribute qualifier: keep matches whose named column contains the
	// term (checked against the stored value, so "author:levy" works per
	// the §7 example). Row reads take the database read lock — concurrent
	// writers append under the write lock.
	db.RLock()
	defer db.RUnlock()
	var out []graph.NodeID
	for _, n := range candidates {
		tbl := db.Table(s.g.TableNameOf(n))
		if tbl == nil {
			continue
		}
		ci := tbl.ColumnIndex(qual)
		if ci < 0 {
			continue
		}
		row := tbl.Row(s.g.RIDOf(n))
		if row == nil || row[ci].IsNull() {
			continue
		}
		for _, tok := range index.Tokenize(row[ci].String()) {
			if tok == term {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// SearchQualified is Search with support for attribute-qualified terms
// ("author:levy") and, when prefix is true, approximate prefix matching
// of unqualified terms. db is needed to check attribute qualifiers; pass
// the database the graph was built from.
func (s *Searcher) SearchQualified(db *sqldb.Database, terms []string, prefix bool, opts *Options) ([]*Answer, error) {
	answers, _, err := s.Query(context.Background(),
		Request{Terms: terms, Qualified: true, Prefix: prefix, DB: db}, opts, nil)
	return answers, err
}

// AnswerGroup is a set of answers sharing the same tree structure over the
// schema — the §7 "summarize the output" extension. Shape is a canonical
// rendering of the structure (table names along the tree).
type AnswerGroup struct {
	Shape   string
	Answers []*Answer
}

// GroupAnswers partitions answers by structural shape, preserving rank
// order within and across groups (groups ordered by their best-ranked
// member). Users can then "look for further answers with a particular tree
// structure".
func GroupAnswers(g graph.View, answers []*Answer) []AnswerGroup {
	byShape := make(map[string]*AnswerGroup)
	var order []string
	for _, a := range answers {
		shape := answerShape(g, a)
		grp, ok := byShape[shape]
		if !ok {
			grp = &AnswerGroup{Shape: shape}
			byShape[shape] = grp
			order = append(order, shape)
		}
		grp.Answers = append(grp.Answers, a)
	}
	out := make([]AnswerGroup, 0, len(order))
	for _, shape := range order {
		out = append(out, *byShape[shape])
	}
	return out
}

// answerShape renders the canonical structure of an answer: the root's
// table and, recursively, the sorted shapes of its subtrees.
func answerShape(g graph.View, a *Answer) string {
	children := make(map[graph.NodeID][]TreeEdge)
	for _, e := range a.Edges {
		children[e.From] = append(children[e.From], e)
	}
	var shape func(n graph.NodeID) string
	shape = func(n graph.NodeID) string {
		kids := children[n]
		if len(kids) == 0 {
			return g.TableNameOf(n)
		}
		parts := make([]string, len(kids))
		for i, e := range kids {
			parts[i] = shape(e.To)
		}
		sort.Strings(parts)
		return g.TableNameOf(n) + "(" + strings.Join(parts, ",") + ")"
	}
	return shape(a.Root)
}
