package core

import (
	"github.com/banksdb/banks/internal/graph"
)

// searchArena is the dense, NodeID-indexed scratch state for one query.
// Everything a search needs that used to be a per-query (or worse,
// per-iterator) hash map lives here as flat slices sized to the graph's
// node count, invalidated in O(1) between queries by bumping a generation
// stamp instead of clearing. Arenas are recycled through the Searcher's
// sync.Pool, so the steady-state allocation cost of a query is just its
// answers — the memory-frugal iterator-state representation EMBANKS argues
// for, which is also what keeps one Searcher cheap to share between many
// concurrent queries.
//
// An arena is owned by exactly one search from acquire to release; none of
// its state is safe for concurrent use.
type searchArena struct {
	n int // graph.NumNodes() the arena was sized for

	// mark is a stamped membership set used by short-lived phases that
	// never overlap: matchTerm's per-term dedup and buildAnswer's in-tree
	// set. A slot is a member iff mark[n] == markGen.
	mark    []uint32
	markGen uint32

	// originIdx maps a keyword node to its slot in origins for the whole
	// query; valid iff originStamp[n] == originGen.
	originIdx   []int32
	originStamp []uint32
	originGen   uint32

	// visitIdx maps a visited node to its slot in the chunked termLists
	// storage; valid iff visitStamp[n] == visitGen.
	visitIdx   []int32
	visitStamp []uint32
	visitGen   uint32
	visited    int

	// origins are the keyword nodes of the current query, each with its
	// shortest-path iterator; masks holds per-origin term-membership
	// bitmasks, maskWords uint64 words per origin.
	origins   []originRec
	masks     []uint64
	maskWords int

	// termLists is the backing store for the per-visited-node term lists
	// (v.L_i in the Figure 3 pseudocode), chunked nTerms slots per visited
	// node. Inner slices keep their capacity across queries.
	termLists []([]graph.NodeID)
	listsUsed int

	// freeIters are recycled shortest-path iterators; each holds dense
	// arrays sized to n plus its heap, all reused via generation bumps.
	freeIters []*sspIterator

	// Result-heap dedup state, keyed by hashed tree signature.
	inHeap map[uint64]*resultItem
	outSig map[uint64]bool

	ih           iterHeap
	comboBuf     []graph.NodeID
	scratchEdges []TreeEdge
}

// originRec is one keyword node of the current query.
type originRec struct {
	node graph.NodeID
	it   *sspIterator
}

func newSearchArena(n int) *searchArena {
	return &searchArena{
		n:           n,
		mark:        make([]uint32, n),
		originIdx:   make([]int32, n),
		originStamp: make([]uint32, n),
		visitIdx:    make([]int32, n),
		visitStamp:  make([]uint32, n),
		inHeap:      make(map[uint64]*resultItem),
		outSig:      make(map[uint64]bool),
	}
}

// bumpGen advances a generation counter, zeroing the stamp array on the
// (roughly once per 4 billion queries) wraparound so stale stamps can never
// alias the new generation.
func bumpGen(gen *uint32, stamps []uint32) uint32 {
	*gen++
	if *gen == 0 {
		for i := range stamps {
			stamps[i] = 0
		}
		*gen = 1
	}
	return *gen
}

// bumpMark starts a fresh membership set; members are slots with
// mark[n] == returned generation.
func (a *searchArena) bumpMark() uint32 { return bumpGen(&a.markGen, a.mark) }

// beginOrigins resets the node -> origin-slot mapping for a new query with
// nTerms search terms.
func (a *searchArena) beginOrigins(nTerms int) {
	bumpGen(&a.originGen, a.originStamp)
	a.origins = a.origins[:0]
	a.masks = a.masks[:0]
	a.maskWords = (nTerms + 63) / 64
}

// originIndex returns the origin slot of node n, or -1.
func (a *searchArena) originIndex(n graph.NodeID) int32 {
	if a.originStamp[n] == a.originGen {
		return a.originIdx[n]
	}
	return -1
}

// addOrigin registers node n as a keyword node and returns its slot.
func (a *searchArena) addOrigin(n graph.NodeID) int32 {
	i := int32(len(a.origins))
	a.origins = append(a.origins, originRec{node: n})
	for k := 0; k < a.maskWords; k++ {
		a.masks = append(a.masks, 0)
	}
	a.originStamp[n] = a.originGen
	a.originIdx[n] = i
	return i
}

// originTerms returns the term bitmask words of origin slot i.
func (a *searchArena) originTerms(i int32) []uint64 {
	return a.masks[int(i)*a.maskWords : (int(i)+1)*a.maskWords]
}

// beginVisits resets the node -> visit-slot mapping.
func (a *searchArena) beginVisits() {
	bumpGen(&a.visitGen, a.visitStamp)
	a.visited = 0
}

// nodeLists returns the nTerms per-term lists of visited node v, creating
// its slot on first use. Inner slices retain capacity across queries.
func (a *searchArena) nodeLists(v graph.NodeID, nTerms int) []([]graph.NodeID) {
	var vi int32
	if a.visitStamp[v] == a.visitGen {
		vi = a.visitIdx[v]
	} else {
		vi = int32(a.visited)
		a.visited++
		a.visitStamp[v] = a.visitGen
		a.visitIdx[v] = vi
	}
	need := (int(vi) + 1) * nTerms
	for len(a.termLists) < need {
		a.termLists = append(a.termLists, nil)
	}
	if need > a.listsUsed {
		a.listsUsed = need
	}
	return a.termLists[int(vi)*nTerms : need]
}

// newIterator hands out a recycled (or fresh) shortest-path iterator rooted
// at origin. The caller must keep it reachable from a.origins so release
// can reclaim it.
func (a *searchArena) newIterator(g graph.View, origin graph.NodeID) *sspIterator {
	var it *sspIterator
	if k := len(a.freeIters); k > 0 {
		it = a.freeIters[k-1]
		a.freeIters = a.freeIters[:k-1]
	} else {
		it = &sspIterator{
			dist:    make([]float64, a.n),
			parent:  make([]graph.NodeID, a.n),
			pweight: make([]float64, a.n),
			visit:   make([]uint32, a.n),
		}
	}
	it.reset(g, origin)
	return it
}

// release returns all per-query state to the arena so the next search
// reuses its memory. Called exactly once per search, after the last answer
// has been materialized.
func (a *searchArena) release() {
	for i := range a.origins {
		if it := a.origins[i].it; it != nil {
			it.g = nil
			a.freeIters = append(a.freeIters, it)
			a.origins[i].it = nil
		}
	}
	a.origins = a.origins[:0]
	a.masks = a.masks[:0]
	for i := 0; i < a.listsUsed; i++ {
		a.termLists[i] = a.termLists[i][:0]
	}
	a.listsUsed = 0
	a.ih = a.ih[:0]
	clear(a.inHeap)
	clear(a.outSig)
}
