package core

import (
	"github.com/banksdb/banks/internal/graph"
)

// searchArena is the dense, NodeID-indexed scratch state for one query.
// Everything a search needs that used to be a per-query (or worse,
// per-iterator) hash map lives here as flat slices sized to the graph's
// node count, invalidated in O(1) between queries by bumping a generation
// stamp instead of clearing. Arenas are recycled through the Searcher's
// sync.Pool, so the steady-state allocation cost of a query is just its
// answers — the memory-frugal iterator-state representation EMBANKS argues
// for, which is also what keeps one Searcher cheap to share between many
// concurrent queries.
//
// An arena is owned by exactly one search from acquire to release; none of
// its state is safe for concurrent use.
type searchArena struct {
	n int // graph.NumNodes() the arena was sized for

	// mark is a stamped membership set used by short-lived phases that
	// never overlap: matchTerm's per-term dedup and buildAnswer's in-tree
	// set. A slot is a member iff mark[n] == markGen.
	mark    []uint32
	markGen uint32

	// originIdx maps a keyword node to its slot in origins for the whole
	// query; valid iff originStamp[n] == originGen.
	originIdx   []int32
	originStamp []uint32
	originGen   uint32

	// visitIdx maps a visited node to its slot in the chunked termLists
	// storage; valid iff visitStamp[n] == visitGen.
	visitIdx   []int32
	visitStamp []uint32
	visitGen   uint32
	visited    int

	// origins are the keyword nodes of the current query, each with its
	// shortest-path iterator; masks holds per-origin term-membership
	// bitmasks, maskWords uint64 words per origin.
	origins   []originRec
	masks     []uint64
	maskWords int

	// termLists is the backing store for the per-visited-node term lists
	// (v.L_i in the Figure 3 pseudocode), chunked nTerms slots per visited
	// node. Inner slices keep their capacity across queries.
	termLists []([]graph.NodeID)
	listsUsed int

	// freeIters are recycled shortest-path iterators; each holds dense
	// arrays sized to n plus its heap, all reused via generation bumps.
	freeIters []*sspIterator

	// Result-heap dedup state, keyed by hashed tree signature.
	inHeap map[uint64]*resultItem
	outSig map[uint64]bool

	ih           iterHeap
	comboBuf     []graph.NodeID
	scratchEdges []TreeEdge

	// Per-query pipeline state, reused so a steady-state query performs no
	// heap allocation: the defaults-applied options copy, the stats block,
	// the executor/emitter/cross-product frames and the normalization and
	// match-set buffers all live here. termSets holds one reusable node
	// buffer per query term (inner capacity retained across queries).
	optsBuf     Options
	statsBuf    Stats
	exBuf       exec
	emBuf       emitter
	gsBuf       genState
	cleanBuf    []string
	activeBuf   []string
	setsBuf     [][]graph.NodeID
	termSets    [][]graph.NodeID
	matchedBuf  []int
	edgeBuf     []TreeEdge
	excludedBuf map[int32]bool

	// Emitter backing: the output heap, the emitted list and the slab the
	// heap's items come from. resultItems never outlive the query, so the
	// slab serves sessions and pooled queries alike.
	rhBuf      resultHeap
	emittedBuf []*Answer
	itemSlab   []resultItem

	// matchFrame + matchFn: reusable EachTableNode visitor for matchTerm.
	// The closure is built once per arena and reads its per-call state from
	// matchBuf, so the metadata expansion walk captures nothing — a fresh
	// closure per call would heap-allocate itself and every captured local.
	matchBuf matchFrame
	matchFn  func(graph.NodeID) bool

	// borrow enables the answer slabs: Answers, their edge lists and their
	// term-node lists are carved out of arena-owned storage instead of the
	// heap, and returned results are only valid until the next query on the
	// owning Session. Pooled (non-session) queries leave this false and
	// allocate answers normally — they escape to arbitrary callers.
	borrow     bool
	answerSlab []Answer
	edgeSlab   []TreeEdge
	nodeSlab   []graph.NodeID
}

// beginQuery resets the per-query pipeline buffers (capacities retained).
// It starts with the release-style recycle: a pooled arena already ran it
// in releaseArena (idempotent), but a Session arena skips releaseArena
// between queries — its borrowed results must survive until this call.
func (a *searchArena) beginQuery() {
	a.release()
	a.cleanBuf = a.cleanBuf[:0]
	a.activeBuf = a.activeBuf[:0]
	a.setsBuf = a.setsBuf[:0]
	a.matchedBuf = a.matchedBuf[:0]
	a.edgeBuf = a.edgeBuf[:0]
	a.rhBuf = a.rhBuf[:0]
	a.emittedBuf = a.emittedBuf[:0]
	a.itemSlab = a.itemSlab[:0]
	if a.borrow {
		a.answerSlab = a.answerSlab[:0]
		a.edgeSlab = a.edgeSlab[:0]
		a.nodeSlab = a.nodeSlab[:0]
	}
}

// termSet returns the reusable match-set buffer for term slot k, empty.
func (a *searchArena) termSet(k int) []graph.NodeID {
	for len(a.termSets) <= k {
		a.termSets = append(a.termSets, nil)
	}
	return a.termSets[k][:0]
}

// newResultItem carves an output-heap item from the arena slab. Slab
// growth moves the backing array, but previously handed-out pointers keep
// the old backing alive and are never re-derived by index, so they stay
// valid; steady state reaches a fixed capacity and stops allocating.
func (a *searchArena) newResultItem(ans *Answer, sig uint64, seq int) *resultItem {
	n := len(a.itemSlab)
	if n < cap(a.itemSlab) {
		a.itemSlab = a.itemSlab[:n+1]
		a.itemSlab[n] = resultItem{ans: ans, sig: sig, seq: seq}
	} else {
		a.itemSlab = append(a.itemSlab, resultItem{ans: ans, sig: sig, seq: seq})
	}
	return &a.itemSlab[n]
}

// newAnswer returns a zeroed Answer: from the arena slab in borrow mode
// (valid until the next query on the owning Session), from the heap
// otherwise.
func (a *searchArena) newAnswer() *Answer {
	if !a.borrow {
		return &Answer{}
	}
	n := len(a.answerSlab)
	if n < cap(a.answerSlab) {
		a.answerSlab = a.answerSlab[:n+1]
		a.answerSlab[n] = Answer{}
	} else {
		a.answerSlab = append(a.answerSlab, Answer{})
	}
	return &a.answerSlab[n]
}

// copyEdges copies src into answer-owned storage (slab in borrow mode).
func (a *searchArena) copyEdges(src []TreeEdge) []TreeEdge {
	if len(src) == 0 {
		return nil
	}
	if !a.borrow {
		return append([]TreeEdge(nil), src...)
	}
	n := len(a.edgeSlab)
	a.edgeSlab = append(a.edgeSlab, src...)
	return a.edgeSlab[n:len(a.edgeSlab):len(a.edgeSlab)]
}

// copyNodes copies src into answer-owned storage (slab in borrow mode).
func (a *searchArena) copyNodes(src []graph.NodeID) []graph.NodeID {
	if len(src) == 0 {
		return nil
	}
	if !a.borrow {
		return append([]graph.NodeID(nil), src...)
	}
	n := len(a.nodeSlab)
	a.nodeSlab = append(a.nodeSlab, src...)
	return a.nodeSlab[n:len(a.nodeSlab):len(a.nodeSlab)]
}

// matchFrame is the mutable state of one metadata-expansion walk (the
// EachTableNode loop in matchTerm), held in the arena so the shared
// visitor closure can reach it without per-call captures.
type matchFrame struct {
	gen          uint32
	limit        int
	metaAdmitted int
	truncated    bool
	set          []graph.NodeID
}

// matchVisitor returns the arena's cached EachTableNode callback,
// building it on first use. It operates on matchBuf, which the caller
// must prime (and drain set from) around each walk.
func (a *searchArena) matchVisitor() func(graph.NodeID) bool {
	if a.matchFn == nil {
		a.matchFn = func(n graph.NodeID) bool {
			f := &a.matchBuf
			if a.mark[n] == f.gen {
				return true
			}
			if f.limit > 0 && f.metaAdmitted >= f.limit {
				f.truncated = true
				return false
			}
			a.mark[n] = f.gen
			f.set = append(f.set, n)
			f.metaAdmitted++
			return true
		}
	}
	return a.matchFn
}

// originRec is one keyword node of the current query.
type originRec struct {
	node graph.NodeID
	it   *sspIterator
}

func newSearchArena(n int) *searchArena {
	return &searchArena{
		n:           n,
		mark:        make([]uint32, n),
		originIdx:   make([]int32, n),
		originStamp: make([]uint32, n),
		visitIdx:    make([]int32, n),
		visitStamp:  make([]uint32, n),
		inHeap:      make(map[uint64]*resultItem),
		outSig:      make(map[uint64]bool),
	}
}

// bumpGen advances a generation counter, zeroing the stamp array on the
// (roughly once per 4 billion queries) wraparound so stale stamps can never
// alias the new generation.
func bumpGen(gen *uint32, stamps []uint32) uint32 {
	*gen++
	if *gen == 0 {
		for i := range stamps {
			stamps[i] = 0
		}
		*gen = 1
	}
	return *gen
}

// bumpMark starts a fresh membership set; members are slots with
// mark[n] == returned generation.
func (a *searchArena) bumpMark() uint32 { return bumpGen(&a.markGen, a.mark) }

// beginOrigins resets the node -> origin-slot mapping for a new query with
// nTerms search terms.
func (a *searchArena) beginOrigins(nTerms int) {
	bumpGen(&a.originGen, a.originStamp)
	a.origins = a.origins[:0]
	a.masks = a.masks[:0]
	a.maskWords = (nTerms + 63) / 64
}

// originIndex returns the origin slot of node n, or -1.
func (a *searchArena) originIndex(n graph.NodeID) int32 {
	if a.originStamp[n] == a.originGen {
		return a.originIdx[n]
	}
	return -1
}

// addOrigin registers node n as a keyword node and returns its slot.
func (a *searchArena) addOrigin(n graph.NodeID) int32 {
	i := int32(len(a.origins))
	a.origins = append(a.origins, originRec{node: n})
	for k := 0; k < a.maskWords; k++ {
		a.masks = append(a.masks, 0)
	}
	a.originStamp[n] = a.originGen
	a.originIdx[n] = i
	return i
}

// originTerms returns the term bitmask words of origin slot i.
func (a *searchArena) originTerms(i int32) []uint64 {
	return a.masks[int(i)*a.maskWords : (int(i)+1)*a.maskWords]
}

// beginVisits resets the node -> visit-slot mapping.
func (a *searchArena) beginVisits() {
	bumpGen(&a.visitGen, a.visitStamp)
	a.visited = 0
}

// nodeLists returns the nTerms per-term lists of visited node v, creating
// its slot on first use. Inner slices retain capacity across queries.
func (a *searchArena) nodeLists(v graph.NodeID, nTerms int) []([]graph.NodeID) {
	var vi int32
	if a.visitStamp[v] == a.visitGen {
		vi = a.visitIdx[v]
	} else {
		vi = int32(a.visited)
		a.visited++
		a.visitStamp[v] = a.visitGen
		a.visitIdx[v] = vi
	}
	need := (int(vi) + 1) * nTerms
	for len(a.termLists) < need {
		a.termLists = append(a.termLists, nil)
	}
	if need > a.listsUsed {
		a.listsUsed = need
	}
	return a.termLists[int(vi)*nTerms : need]
}

// newIterator hands out a recycled (or fresh) shortest-path iterator rooted
// at origin. The caller must keep it reachable from a.origins so release
// can reclaim it.
func (a *searchArena) newIterator(g graph.View, origin graph.NodeID) *sspIterator {
	var it *sspIterator
	if k := len(a.freeIters); k > 0 {
		it = a.freeIters[k-1]
		a.freeIters = a.freeIters[:k-1]
	} else {
		it = &sspIterator{
			dist:    make([]float64, a.n),
			parent:  make([]graph.NodeID, a.n),
			pweight: make([]float64, a.n),
			visit:   make([]uint32, a.n),
		}
	}
	it.reset(g, origin)
	return it
}

// release returns all per-query state to the arena so the next search
// reuses its memory. Called exactly once per search, after the last answer
// has been materialized.
func (a *searchArena) release() {
	for i := range a.origins {
		if it := a.origins[i].it; it != nil {
			it.g = nil
			a.freeIters = append(a.freeIters, it)
			a.origins[i].it = nil
		}
	}
	a.origins = a.origins[:0]
	a.masks = a.masks[:0]
	for i := 0; i < a.listsUsed; i++ {
		a.termLists[i] = a.termLists[i][:0]
	}
	a.listsUsed = 0
	a.ih = a.ih[:0]
	clear(a.inHeap)
	clear(a.outSig)
}
