package core

import (
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/graph"
)

func TestParseQualifiedTerm(t *testing.T) {
	cases := []struct {
		in         string
		qual, bare string
		ok         bool
	}{
		{"author:levy", "author", "levy", true},
		{"plain", "", "plain", false},
		{":levy", "", ":levy", false},
		{"author:", "", "author:", false},
		{"a:b:c", "a", "b:c", true},
	}
	for _, c := range cases {
		q, bare, ok := parseQualifiedTerm(c.in)
		if q != c.qual || bare != c.bare || ok != c.ok {
			t.Errorf("parseQualifiedTerm(%q) = %q, %q, %v", c.in, q, bare, ok)
		}
	}
}

func TestSearchQualifiedByRelation(t *testing.T) {
	f := newBibFixture(t)
	// "mohan" matches only authors anyway, but "paper:aries" restricts the
	// aries matches to the Paper relation (writes tuples contain the token
	// in their FK text too, if ids collide; here it filters cleanly).
	answers, err := f.s.SearchQualified(f.db, []string{"paper:aries"}, false, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %d, want the 2 ARIES papers", len(answers))
	}
	for _, a := range answers {
		if f.g.TableNameOf(a.Root) != "Paper" {
			t.Errorf("answer in %s", f.g.TableNameOf(a.Root))
		}
	}
}

func TestSearchQualifiedByAttribute(t *testing.T) {
	f := newBibFixture(t)
	// authorname:mohan — the §7 "author:Levy" style query.
	answers, err := f.s.SearchQualified(f.db, []string{"authorname:mohan"}, false, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %d, want 2 Mohans", len(answers))
	}
	// A qualifier matching nothing yields no answers.
	answers, err = f.s.SearchQualified(f.db, []string{"bogus:mohan"}, false, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 0 {
		t.Errorf("bogus qualifier matched %d answers", len(answers))
	}
}

func TestSearchQualifiedMultiTerm(t *testing.T) {
	f := newBibFixture(t)
	answers, err := f.s.SearchQualified(f.db, []string{"author:soumen", "author:sunita"}, false, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	soumen := f.node(t, "Author", "SoumenC")
	sunita := f.node(t, "Author", "SunitaS")
	if !answers[0].ContainsNode(soumen) || !answers[0].ContainsNode(sunita) {
		t.Error("top answer missing the qualified authors")
	}
}

func TestSearchPrefixMatching(t *testing.T) {
	f := newBibFixture(t)
	// "surpris" is not a token; prefix matching finds "surprising".
	answers, err := f.s.SearchQualified(f.db, []string{"surpris"}, true, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("prefix match found nothing")
	}
	// Without prefix matching the same term finds nothing.
	none, err := f.s.SearchQualified(f.db, []string{"surpris"}, false, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Error("exact match should find nothing for a prefix")
	}
}

func TestGroupAnswers(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	o.HeapSize = 100
	answers, err := f.s.Search([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) < 2 {
		t.Skip("need several answers")
	}
	groups := GroupAnswers(f.g, answers)
	total := 0
	for _, g := range groups {
		total += len(g.Answers)
		if g.Shape == "" {
			t.Error("empty shape")
		}
		// All members share the shape.
		for _, a := range g.Answers {
			if answerShape(f.g, a) != g.Shape {
				t.Error("group member has different shape")
			}
		}
	}
	if total != len(answers) {
		t.Errorf("grouped %d of %d answers", total, len(answers))
	}
	// The two coauthored-paper answers share one structural shape:
	// Paper(Writes(Author),Writes(Author)).
	want := "Paper(Writes(Author),Writes(Author))"
	found := false
	for _, g := range groups {
		if g.Shape == want && len(g.Answers) >= 2 {
			found = true
		}
	}
	if !found {
		var shapes []string
		for _, g := range groups {
			shapes = append(shapes, g.Shape)
		}
		t.Errorf("expected shape %q with >= 2 members; shapes = %s", want, strings.Join(shapes, "; "))
	}
}

func TestAnswerShapeCanonical(t *testing.T) {
	f := newBibFixture(t)
	// Shape must not depend on child order: build two answers with
	// mirrored edges.
	p := f.node(t, "Paper", "ChakrabartiSD98")
	w1 := graph.NodeID(-1)
	w2 := graph.NodeID(-1)
	// Find two writes nodes pointing at the paper.
	for _, e := range f.g.In(p) {
		if f.g.TableNameOf(e.To) == "Writes" {
			if w1 == graph.NoNode {
				w1 = e.To
			} else if w2 == graph.NoNode {
				w2 = e.To
			}
		}
	}
	if w1 == graph.NoNode || w2 == graph.NoNode {
		t.Fatal("missing writes nodes")
	}
	a1 := &Answer{Root: p, Edges: []TreeEdge{{From: p, To: w1}, {From: p, To: w2}}}
	a2 := &Answer{Root: p, Edges: []TreeEdge{{From: p, To: w2}, {From: p, To: w1}}}
	if answerShape(f.g, a1) != answerShape(f.g, a2) {
		t.Error("shape depends on edge order")
	}
}
