package core

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestBudgetPopsExhaustion: a tiny pops budget truncates the expansion,
// flags the stats, and still returns whatever was emitted, ranked.
func TestBudgetPopsExhaustion(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	o.Budget.MaxPops = 3
	answers, stats, err := f.s.SearchStats([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.BudgetExhausted || stats.BudgetReason != "pops" {
		t.Errorf("exhausted=%v reason=%q, want pops", stats.BudgetExhausted, stats.BudgetReason)
	}
	if stats.Pops > 3 {
		t.Errorf("pops = %d, exceeds budget", stats.Pops)
	}
	for i, a := range answers {
		if a.Rank != i+1 {
			t.Errorf("rank %d at position %d", a.Rank, i)
		}
	}
}

// TestBudgetLegacyMaxPopsSetsFlag: the pre-Budget MaxPops spelling now
// also reports truncation through the budget flag.
func TestBudgetLegacyMaxPopsSetsFlag(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	o.MaxPops = 5
	_, stats, err := f.s.SearchStats([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.BudgetExhausted || stats.BudgetReason != "pops" {
		t.Errorf("legacy MaxPops truncation not flagged: %+v", stats)
	}
}

// TestBudgetArcsExhaustion: an arc budget cuts off expansion and reports
// "arcs"; an ample budget leaves the query untouched with the same
// answers.
func TestBudgetArcsExhaustion(t *testing.T) {
	f := newBibFixture(t)
	o := defaultBibOptions()
	full, fullStats, err := f.s.SearchStats([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.BudgetExhausted {
		t.Fatalf("unbudgeted query reported exhaustion: %+v", fullStats)
	}
	if fullStats.ArcsScanned == 0 {
		t.Fatal("no arcs accounted on the full run")
	}

	o.Budget.MaxArcsScanned = 1
	_, stats, err := f.s.SearchStats([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.BudgetExhausted || stats.BudgetReason != "arcs" {
		t.Errorf("exhausted=%v reason=%q, want arcs", stats.BudgetExhausted, stats.BudgetReason)
	}

	// An ample arc budget must not perturb the answers.
	o.Budget.MaxArcsScanned = fullStats.ArcsScanned * 2
	again, againStats, err := f.s.SearchStats([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if againStats.BudgetExhausted {
		t.Errorf("ample budget flagged: %+v", againStats)
	}
	if len(again) != len(full) {
		t.Errorf("answers changed under ample budget: %d vs %d", len(again), len(full))
	}
}

// TestBudgetTruncationDeterministicColdVsWarm pins the arc-replay
// contract: a budget-truncated query over pooled (memoized) frontiers
// must cut off at exactly the same point — same pops, same arcs, same
// answers — whether the iterators run cold or replay a warm trail.
func TestBudgetTruncationDeterministicColdVsWarm(t *testing.T) {
	f := newBibFixture(t)
	s := NewSearcher(f.g, f.ix).WithFrontierPool(16)
	o := defaultBibOptions()
	o.Strategy = StrategyBatched
	o.Budget.MaxArcsScanned = 6

	run := func() ([]string, int, int) {
		answers, stats, err := s.SearchStats([]string{"soumen", "sunita"}, o)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.BudgetExhausted {
			t.Fatalf("budget not exhausted: %+v", stats)
		}
		var roots []string
		for _, a := range answers {
			roots = append(roots, fmt.Sprintf("%d:%.4f", a.Root, a.Score))
		}
		return roots, stats.Pops, stats.ArcsScanned
	}

	coldRoots, coldPops, coldArcs := run()
	// Second run replays the memoized trails checked into the pool.
	warmRoots, warmPops, warmArcs := run()
	if s.FrontierReuses() == 0 {
		t.Fatal("warm run did not reuse pooled frontiers")
	}
	if coldPops != warmPops || coldArcs != warmArcs {
		t.Errorf("cold (pops=%d arcs=%d) != warm (pops=%d arcs=%d)", coldPops, coldArcs, warmPops, warmArcs)
	}
	if !reflect.DeepEqual(coldRoots, warmRoots) {
		t.Errorf("answers diverged:\ncold %v\nwarm %v", coldRoots, warmRoots)
	}
}

// TestBudgetBytesFaulted drives the bytes axis through a fake fault
// meter: resolution-time exhaustion stops before expansion, and the
// meter's delta is reported in Stats.
func TestBudgetBytesFaulted(t *testing.T) {
	f := newBibFixture(t)
	var meter atomic.Int64
	meter.Store(1 << 20) // pre-existing faults must not charge this query
	s := NewSearcher(f.g, f.ix).WithFaultMeter(meter.Load)

	// The searcher consults the meter but nothing faults: no exhaustion.
	o := defaultBibOptions()
	o.Budget.MaxBytesFaulted = 100
	answers, stats, err := s.SearchStats([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BudgetExhausted || stats.BytesFaulted != 0 || len(answers) == 0 {
		t.Fatalf("no-fault query: answers=%d stats=%+v", len(answers), stats)
	}

	// Simulate resolution faulting past the budget: wrap the meter so it
	// jumps after the base sample. Simplest deterministic route: a meter
	// that advances on every read.
	var reads atomic.Int64
	s2 := NewSearcher(f.g, f.ix).WithFaultMeter(func() int64 {
		return reads.Add(200) // every sample is 200 bytes beyond the last
	})
	answers, stats, err = s2.SearchStats([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.BudgetExhausted || stats.BudgetReason != "bytes" {
		t.Errorf("exhausted=%v reason=%q, want bytes", stats.BudgetExhausted, stats.BudgetReason)
	}
	if len(answers) != 0 {
		t.Errorf("resolution-time kill returned %d answers", len(answers))
	}
	if stats.BytesFaulted <= 0 {
		t.Errorf("BytesFaulted = %d", stats.BytesFaulted)
	}
}

// TestBudgetZeroIsUnlimited: zero-valued budget axes (beyond the MaxPops
// default) leave a normal query untouched.
func TestBudgetZeroIsUnlimited(t *testing.T) {
	f := newBibFixture(t)
	answers, stats, err := f.s.SearchStats([]string{"soumen", "sunita"}, defaultBibOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.BudgetExhausted || stats.BudgetReason != "" {
		t.Errorf("default options flagged exhaustion: %+v", stats)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
}
