package datagen

import (
	"fmt"
	"math/rand"

	"github.com/banksdb/banks/internal/sqldb"
)

// DBLPConfig sizes the synthetic bibliography.
type DBLPConfig struct {
	Papers             int     // random papers (seeded anecdote papers are extra)
	Authors            int     // random authors
	AvgAuthorsPerPaper float64 // target mean authors per random paper
	Cites              int     // random citation rows
	Seed               int64
}

// SmallDBLP is the test-sized configuration (~2K nodes).
func SmallDBLP() DBLPConfig {
	return DBLPConfig{Papers: 300, Authors: 200, AvgAuthorsPerPaper: 2.5, Cites: 500, Seed: 1}
}

// PaperScaleDBLP reproduces the Section 5.2 scale: the resulting BANKS
// graph has ≈100K nodes and ≈300K directed edges (papers + authors +
// writes + cites nodes; each writes/cites row contributes 4 arcs).
func PaperScaleDBLP() DBLPConfig {
	return DBLPConfig{Papers: 16000, Authors: 9000, AvgAuthorsPerPaper: 2.5, Cites: 41000, Seed: 1}
}

// DBLPSchema returns the Figure 1 schema: Paper, Author, Writes, Cites.
// Writes→Paper/Author links carry weight 1 (strong); Cites links weight 2
// (the paper's example of a weaker link type).
func DBLPSchema() []*sqldb.TableSchema {
	return []*sqldb.TableSchema{
		{
			Name: "Paper",
			Columns: []sqldb.Column{
				{Name: "PaperId", Type: sqldb.TypeText, NotNull: true},
				{Name: "PaperName", Type: sqldb.TypeText},
				{Name: "Year", Type: sqldb.TypeInt},
			},
			PrimaryKey: []string{"PaperId"},
		},
		{
			Name: "Author",
			Columns: []sqldb.Column{
				{Name: "AuthorId", Type: sqldb.TypeText, NotNull: true},
				{Name: "AuthorName", Type: sqldb.TypeText},
			},
			PrimaryKey: []string{"AuthorId"},
		},
		{
			Name: "Writes",
			Columns: []sqldb.Column{
				{Name: "AuthorId", Type: sqldb.TypeText, NotNull: true},
				{Name: "PaperId", Type: sqldb.TypeText, NotNull: true},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "AuthorId", RefTable: "Author", Weight: 1},
				{Column: "PaperId", RefTable: "Paper", Weight: 1},
			},
		},
		{
			Name: "Cites",
			Columns: []sqldb.Column{
				{Name: "Citing", Type: sqldb.TypeText, NotNull: true},
				{Name: "Cited", Type: sqldb.TypeText, NotNull: true},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "Citing", RefTable: "Paper", Weight: 2},
				{Column: "Cited", RefTable: "Paper", Weight: 2},
			},
		},
	}
}

// Anecdote entity ids, exported so the evaluation harness and tests can
// locate the ideal answers without string matching.
const (
	AuthorCMohan      = "MohanC"
	AuthorMohanAhuja  = "AhujaM"
	AuthorMohanKamat  = "KamatM"
	AuthorJimGray     = "GrayJ"
	AuthorReuter      = "ReuterA"
	AuthorSoumen      = "ChakrabartiS"
	AuthorSunita      = "SarawagiS"
	AuthorByron       = "DomB"
	AuthorStonebraker = "StonebrakerM"
	AuthorSeltzer     = "SeltzerM"

	PaperChakrabartiSD98 = "ChakrabartiSD98"
	PaperSoumenSunita2nd = "ChakrabartiS99"
	PaperGrayTransaction = "Gray81"
	PaperGrayReuterBook  = "GrayR93"
	PaperStonebrakerSelt = "StonebrakerS90"
	PaperStonebrakerSun  = "StonebrakerS96"
	PaperAriesMohan      = "MohanL92"
)

// BuildDBLP generates the bibliography database. It is deterministic for a
// fixed config.
func BuildDBLP(cfg DBLPConfig) (*sqldb.Database, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := sqldb.NewDatabase()
	for _, s := range DBLPSchema() {
		if _, err := db.CreateTable(s); err != nil {
			return nil, err
		}
	}
	addAuthor := func(id, name string) error {
		_, err := db.Insert("Author", []sqldb.Value{sqldb.Text(id), sqldb.Text(name)})
		return err
	}
	addPaper := func(id, title string, year int) error {
		_, err := db.Insert("Paper", []sqldb.Value{sqldb.Text(id), sqldb.Text(title), sqldb.Int(int64(year))})
		return err
	}
	addWrites := func(aid, pid string) error {
		_, err := db.Insert("Writes", []sqldb.Value{sqldb.Text(aid), sqldb.Text(pid)})
		return err
	}
	addCites := func(citing, cited string) error {
		_, err := db.Insert("Cites", []sqldb.Value{sqldb.Text(citing), sqldb.Text(cited)})
		return err
	}

	// --- Seeded anecdote entities (§5.1) ---
	// Insertion order is deliberately anti-correlated with prestige (Kamat
	// before Ahuja before C. Mohan, the Gray classics after the distractor
	// papers below): when a parameter setting ignores node weights, ties
	// must not accidentally resolve in the ideal order through node ids,
	// just as a real DBLP load order would not.
	seededAuthors := []struct{ id, name string }{
		{AuthorSeltzer, "Margo Seltzer"},
		{AuthorStonebraker, "Michael Stonebraker"},
		{AuthorByron, "Byron Dom"},
		{AuthorSunita, "Sunita Sarawagi"},
		{AuthorSoumen, "Soumen Chakrabarti"},
		{AuthorReuter, "Andreas Reuter"},
		{AuthorJimGray, "Jim Gray"},
		{AuthorMohanKamat, "Mohan Kamat"},
		{AuthorMohanAhuja, "Mohan Ahuja"},
		{AuthorCMohan, "C. Mohan"},
	}
	for _, a := range seededAuthors {
		if err := addAuthor(a.id, a.name); err != nil {
			return nil, err
		}
	}
	type seedPaper struct {
		id, title string
		year      int
		authors   []string
	}
	seededPapersEarly := []seedPaper{
		{PaperChakrabartiSD98, "Mining Surprising Patterns Using Temporal Description Length", 1998,
			[]string{AuthorSoumen, AuthorSunita, AuthorByron}},
		{PaperSoumenSunita2nd, "Scalable Mining of Sequential Surprise Measures", 1999,
			[]string{AuthorSoumen, AuthorSunita}},
		{PaperStonebrakerSelt, "Read Optimized File Layouts and Logging", 1990,
			[]string{AuthorStonebraker, AuthorSeltzer}},
		{PaperStonebrakerSun, "Federated Warehouse Maintenance Infrastructure", 1996,
			[]string{AuthorStonebraker, AuthorSunita}},
		{PaperAriesMohan, "ARIES: A Recovery Method Supporting Fine-Granularity Locking", 1992,
			[]string{AuthorCMohan}},
	}
	// Gray's classics are inserted after the "transaction" distractors so
	// node-id tie-breaking does not hand them their ideal ranks for free.
	seededPapersLate := []seedPaper{
		{PaperGrayTransaction, "The Transaction Concept: Virtues and Limitations", 1981,
			[]string{AuthorJimGray}},
		{PaperGrayReuterBook, "Transaction Processing: Concepts and Techniques", 1993,
			[]string{AuthorJimGray, AuthorReuter}},
	}
	addSeedPapers := func(list []seedPaper) error {
		for _, p := range list {
			if err := addPaper(p.id, p.title, p.year); err != nil {
				return err
			}
			for _, a := range p.authors {
				if err := addWrites(a, p.id); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := addSeedPapers(seededPapersEarly); err != nil {
		return nil, err
	}

	// --- Random authors and papers ---
	randomAuthorIDs := make([]string, cfg.Authors)
	for i := range randomAuthorIDs {
		id := fmt.Sprintf("A%05d", i)
		randomAuthorIDs[i] = id
		if err := addAuthor(id, randomName(rng)); err != nil {
			return nil, err
		}
	}
	// Prolific-author pool: C. Mohan sits at the front so the Zipfian
	// draw makes him a heavy hitter — the "Mohan" anecdote needs him to
	// collect prestige. Stonebraker's volume comes from dedicated papers
	// below, keeping it high enough to make his back edges expensive but
	// low enough that the "seltzer sunita" bridge stays within the search
	// horizon.
	authorPool := append([]string{AuthorCMohan}, randomAuthorIDs...)
	allPaperIDs := make([]string, 0, cfg.Papers+32)
	for _, p := range seededPapersEarly {
		allPaperIDs = append(allPaperIDs, p.id)
	}

	// A couple of low-prestige "transaction" distractor papers: the
	// "transaction" anecdote needs title matches that lose to Gray's
	// classics on prestige.
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("TXD%02d", i)
		title := "Transaction " + randomTitle(rng, 4)
		if err := addPaper(id, title, 1985+i); err != nil {
			return nil, err
		}
		if err := addWrites(authorPool[1+zipfIndex(rng, len(authorPool)-1)], id); err != nil {
			return nil, err
		}
		allPaperIDs = append(allPaperIDs, id)
	}
	if err := addSeedPapers(seededPapersLate); err != nil {
		return nil, err
	}
	for _, p := range seededPapersLate {
		allPaperIDs = append(allPaperIDs, p.id)
	}
	// Distractor authors for "mohan ahuja/kamat" prestige ordering.
	if err := addPaper("AhujaP1", "Flooding Protocols For Broadcast Networks", 1990); err != nil {
		return nil, err
	}
	if err := addWrites(AuthorMohanAhuja, "AhujaP1"); err != nil {
		return nil, err
	}
	if err := addPaper("AhujaP2", "Ordering Guarantees In Distributed Systems", 1991); err != nil {
		return nil, err
	}
	if err := addWrites(AuthorMohanAhuja, "AhujaP2"); err != nil {
		return nil, err
	}
	if err := addPaper("KamatP1", "Replicated Object Placement", 1995); err != nil {
		return nil, err
	}
	if err := addWrites(AuthorMohanKamat, "KamatP1"); err != nil {
		return nil, err
	}
	allPaperIDs = append(allPaperIDs, "AhujaP1", "AhujaP2", "KamatP1")

	// Random citations draw their targets from the random papers only;
	// the seeded papers' citation counts are controlled explicitly so the
	// anecdote neighborhoods keep the intended shape.
	firstRandomPaper := len(allPaperIDs)
	for i := 0; i < cfg.Papers; i++ {
		id := fmt.Sprintf("P%05d", i)
		if err := addPaper(id, randomTitle(rng, 5), 1970+rng.Intn(32)); err != nil {
			return nil, err
		}
		allPaperIDs = append(allPaperIDs, id)
		// 1..4 authors, Zipf-biased toward the prolific pool front.
		na := authorsPerPaper(rng, cfg.AvgAuthorsPerPaper)
		seen := make(map[string]bool, na)
		for j := 0; j < na; j++ {
			aid := authorPool[zipfIndex(rng, len(authorPool))]
			if seen[aid] {
				continue
			}
			seen[aid] = true
			if err := addWrites(aid, id); err != nil {
				return nil, err
			}
		}
	}

	// C. Mohan gets a burst of extra papers; Mohan Ahuja has 3, Kamat 1 —
	// the §5.1 "Mohan" ranking.
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("MOHX%02d", i)
		if err := addPaper(id, randomTitle(rng, 4), 1988+i); err != nil {
			return nil, err
		}
		if err := addWrites(AuthorCMohan, id); err != nil {
			return nil, err
		}
		allPaperIDs = append(allPaperIDs, id)
	}
	// Stonebraker's extra papers make his Writes back-edges heavy.
	for i := 0; i < 15; i++ {
		id := fmt.Sprintf("STBX%02d", i)
		if err := addPaper(id, randomTitle(rng, 4), 1975+i); err != nil {
			return nil, err
		}
		if err := addWrites(AuthorStonebraker, id); err != nil {
			return nil, err
		}
		allPaperIDs = append(allPaperIDs, id)
	}

	// --- Citations ---
	// Gray's classics collect the most citations (the "transaction"
	// anecdote), ARIES a healthy number, and the rest follow a Zipf draw.
	citePair := func(citing, cited string) error {
		if citing == cited {
			return nil
		}
		return addCites(citing, cited)
	}
	heavy := []struct {
		id    string
		cites int
	}{
		{PaperGrayTransaction, 60},
		{PaperGrayReuterBook, 45},
		{PaperAriesMohan, 25},
		{PaperChakrabartiSD98, 8},
	}
	for _, h := range heavy {
		for i := 0; i < h.cites; i++ {
			if err := citePair(allPaperIDs[rng.Intn(len(allPaperIDs))], h.id); err != nil {
				return nil, err
			}
		}
	}
	randomPapers := allPaperIDs[firstRandomPaper:]
	for i := 0; i < cfg.Cites && len(randomPapers) > 0; i++ {
		citing := allPaperIDs[rng.Intn(len(allPaperIDs))]
		cited := randomPapers[zipfIndex(rng, len(randomPapers))]
		if err := citePair(citing, cited); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// authorsPerPaper draws 1..4 with the requested mean (clamped to [1,4]).
func authorsPerPaper(rng *rand.Rand, mean float64) int {
	if mean < 1 {
		mean = 1
	}
	if mean > 4 {
		mean = 4
	}
	// Two-point mix of {1,2,3,4} tuned so E[n] == mean: draw base b and
	// add Bernoulli fractions.
	n := 1
	for n < 4 && rng.Float64() < (mean-1)/3 {
		n++
	}
	// This geometric-ish draw has mean <= requested; nudge with one extra
	// coin flip for means above 2.
	if n < 4 && mean > 2 && rng.Float64() < 0.3 {
		n++
	}
	return n
}
