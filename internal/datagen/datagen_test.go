package datagen

import (
	"math/rand"
	"testing"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

func buildSearch(t *testing.T, db *sqldb.Database) (*graph.Graph, *core.Searcher) {
	t.Helper()
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	return g, core.NewSearcher(g, ix)
}

func TestBuildDBLPDeterministic(t *testing.T) {
	db1, err := BuildDBLP(SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	db2, err := BuildDBLP(SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := db1.Stats(), db2.Stats()
	if s1 != s2 {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
}

func TestDBLPSchemaFigure1(t *testing.T) {
	db, err := BuildDBLP(SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Paper", "Author", "Writes", "Cites"} {
		if db.Table(name) == nil {
			t.Errorf("missing table %s", name)
		}
	}
	w := db.Table("Writes").Schema()
	if len(w.ForeignKeys) != 2 {
		t.Errorf("Writes FKs = %d", len(w.ForeignKeys))
	}
	c := db.Table("Cites").Schema()
	for _, fk := range c.ForeignKeys {
		if fk.Weight != 2 {
			t.Errorf("Cites FK weight = %v, want 2 (weaker link)", fk.Weight)
		}
	}
}

func TestDBLPSeededEntitiesPresent(t *testing.T) {
	db, err := BuildDBLP(SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	authors := db.Table("Author")
	for _, id := range []string{AuthorCMohan, AuthorJimGray, AuthorSoumen, AuthorSunita, AuthorByron, AuthorStonebraker, AuthorSeltzer} {
		if authors.LookupPK([]sqldb.Value{sqldb.Text(id)}) < 0 {
			t.Errorf("missing seeded author %s", id)
		}
	}
	papers := db.Table("Paper")
	for _, id := range []string{PaperChakrabartiSD98, PaperGrayTransaction, PaperGrayReuterBook, PaperStonebrakerSelt, PaperStonebrakerSun} {
		if papers.LookupPK([]sqldb.Value{sqldb.Text(id)}) < 0 {
			t.Errorf("missing seeded paper %s", id)
		}
	}
}

func TestDBLPGraphScaleSmall(t *testing.T) {
	db, err := BuildDBLP(SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 1000 {
		t.Errorf("small DBLP graph has only %d nodes", g.NumNodes())
	}
	if g.NumArcs() < 2*g.NumNodes() {
		t.Errorf("graph too sparse: %s", g)
	}
}

func TestDBLPCitationSkew(t *testing.T) {
	db, err := BuildDBLP(SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.Build(db, nil)
	grayTC := g.NodeOf("Paper", db.Table("Paper").LookupPK([]sqldb.Value{sqldb.Text(PaperGrayTransaction)}))
	book := g.NodeOf("Paper", db.Table("Paper").LookupPK([]sqldb.Value{sqldb.Text(PaperGrayReuterBook)}))
	if g.Prestige(grayTC) <= g.Prestige(book) {
		t.Errorf("Gray'81 prestige (%v) should exceed the book's (%v)",
			g.Prestige(grayTC), g.Prestige(book))
	}
	// Both must be well above the median paper.
	lo, hi := g.NodesOfTable(g.TableID("Paper"))
	var above int
	for n := lo; n < hi; n++ {
		if g.Prestige(n) > g.Prestige(book) {
			above++
		}
	}
	if frac := float64(above) / float64(hi-lo); frac > 0.05 {
		t.Errorf("%.1f%% of papers outrank the book; want < 5%%", 100*frac)
	}
}

func TestAnecdoteMohan(t *testing.T) {
	db, err := BuildDBLP(SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	g, s := buildSearch(t, db)
	o := core.DefaultOptions()
	o.ExcludedRootTables = []string{"Writes", "Cites"}
	answers, err := s.Search([]string{"mohan"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) < 3 {
		t.Fatalf("mohan answers = %d, want >= 3", len(answers))
	}
	wantTop := g.NodeOf("Author", db.Table("Author").LookupPK([]sqldb.Value{sqldb.Text(AuthorCMohan)}))
	if answers[0].Root != wantTop {
		t.Errorf("top mohan answer should be C. Mohan (prestige %v), got %s rid %d",
			g.Prestige(wantTop), g.TableNameOf(answers[0].Root), g.RIDOf(answers[0].Root))
	}
}

func TestAnecdoteTransaction(t *testing.T) {
	db, err := BuildDBLP(SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	g, s := buildSearch(t, db)
	o := core.DefaultOptions()
	o.ExcludedRootTables = []string{"Writes", "Cites"}
	answers, err := s.Search([]string{"transaction"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) < 2 {
		t.Fatalf("transaction answers = %d", len(answers))
	}
	paperTbl := db.Table("Paper")
	gray := g.NodeOf("Paper", paperTbl.LookupPK([]sqldb.Value{sqldb.Text(PaperGrayTransaction)}))
	book := g.NodeOf("Paper", paperTbl.LookupPK([]sqldb.Value{sqldb.Text(PaperGrayReuterBook)}))
	if answers[0].Root != gray {
		t.Errorf("top transaction answer should be Gray'81")
	}
	if answers[1].Root != book {
		t.Errorf("second transaction answer should be the Gray–Reuter book")
	}
}

func TestAnecdoteSoumenSunita(t *testing.T) {
	db, err := BuildDBLP(SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	g, s := buildSearch(t, db)
	o := core.DefaultOptions()
	o.ExcludedRootTables = []string{"Writes", "Cites"}
	answers, err := s.Search([]string{"soumen", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	paperTbl := db.Table("Paper")
	coauthored := map[graph.NodeID]bool{
		g.NodeOf("Paper", paperTbl.LookupPK([]sqldb.Value{sqldb.Text(PaperChakrabartiSD98)})): true,
		g.NodeOf("Paper", paperTbl.LookupPK([]sqldb.Value{sqldb.Text(PaperSoumenSunita2nd)})): true,
	}
	if !coauthored[answers[0].Root] {
		t.Errorf("top soumen-sunita answer rooted at %s[%d], want a coauthored paper",
			g.TableNameOf(answers[0].Root), g.RIDOf(answers[0].Root))
	}
}

func TestAnecdoteSeltzerSunitaViaStonebraker(t *testing.T) {
	db, err := BuildDBLP(SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	g, s := buildSearch(t, db)
	o := core.DefaultOptions()
	o.ExcludedRootTables = []string{"Writes", "Cites"}
	o.HeapSize = 50
	answers, err := s.Search([]string{"seltzer", "sunita"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no seltzer-sunita answers")
	}
	// The intuitive connection runs through Stonebraker (coauthor of
	// each); with edge log scaling it must appear among the top answers.
	stone := g.NodeOf("Author", db.Table("Author").LookupPK([]sqldb.Value{sqldb.Text(AuthorStonebraker)}))
	found := -1
	for i, a := range answers {
		if a.ContainsNode(stone) {
			found = i
			break
		}
	}
	if found < 0 || found > 4 {
		t.Errorf("Stonebraker bridge at rank %d, want top 5", found+1)
	}
}

func TestBuildThesisSeeds(t *testing.T) {
	db, err := BuildThesis(SmallThesis())
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("department").LookupPK([]sqldb.Value{sqldb.Int(DeptCSE)}) < 0 {
		t.Error("missing CSE department")
	}
	if db.Table("faculty").LookupPK([]sqldb.Value{sqldb.Text(FacSudarshan)}) < 0 {
		t.Error("missing Sudarshan")
	}
	if db.Table("student").LookupPK([]sqldb.Value{sqldb.Text(StudentAditya)}) < 0 {
		t.Error("missing Aditya")
	}
	if db.Table("thesis").LookupPK([]sqldb.Value{sqldb.Text(ThesisAditya)}) < 0 {
		t.Error("missing Aditya's thesis")
	}
}

func TestAnecdoteComputerEngineering(t *testing.T) {
	db, err := BuildThesis(SmallThesis())
	if err != nil {
		t.Fatal(err)
	}
	g, s := buildSearch(t, db)
	answers, err := s.Search([]string{"computer", "engineering"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	cse := g.NodeOf("department", db.Table("department").LookupPK([]sqldb.Value{sqldb.Int(DeptCSE)}))
	if answers[0].Root != cse {
		t.Errorf("top answer should be the CSE department, got %s[%d]",
			g.TableNameOf(answers[0].Root), g.RIDOf(answers[0].Root))
	}
}

func TestAnecdoteSudarshanAditya(t *testing.T) {
	db, err := BuildThesis(SmallThesis())
	if err != nil {
		t.Fatal(err)
	}
	g, s := buildSearch(t, db)
	o := core.DefaultOptions()
	answers, err := s.Search([]string{"sudarshan", "aditya"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	thesis := g.NodeOf("thesis", db.Table("thesis").LookupPK([]sqldb.Value{sqldb.Text(ThesisAditya)}))
	if answers[0].Root != thesis {
		t.Errorf("top answer should be Aditya's thesis (advised by Sudarshan), got %s[%d]",
			g.TableNameOf(answers[0].Root), g.RIDOf(answers[0].Root))
	}
}

func TestBuildTPCDPrestige(t *testing.T) {
	db, err := BuildTPCD(SmallTPCD())
	if err != nil {
		t.Fatal(err)
	}
	g, s := buildSearch(t, db)
	pop := g.NodeOf("part", db.Table("part").LookupPK([]sqldb.Value{sqldb.Int(PartPopular)}))
	unpop := g.NodeOf("part", db.Table("part").LookupPK([]sqldb.Value{sqldb.Int(PartUnpopular)}))
	if g.Prestige(pop) <= g.Prestige(unpop) {
		t.Fatalf("popular part prestige %v <= unpopular %v", g.Prestige(pop), g.Prestige(unpop))
	}
	// The §2.1 claim: a query matching both parts ranks the ordered one
	// higher.
	answers, err := s.Search([]string{"steel", "widget"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) < 2 {
		t.Fatalf("steel widget answers = %d", len(answers))
	}
	if answers[0].Root != pop {
		t.Errorf("top part should be the popular widget")
	}
	if answers[1].Root != unpop {
		t.Errorf("second part should be the economy widget")
	}
}

func TestZipfIndexBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		idx := zipfIndex(rng, 10)
		if idx < 0 || idx >= 10 {
			t.Fatalf("zipfIndex out of range: %d", idx)
		}
		counts[idx]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("zipf should be head-heavy: %v", counts)
	}
	if zipfIndex(rng, 1) != 0 || zipfIndex(rng, 0) != 0 {
		t.Error("degenerate n should return 0")
	}
}

func TestAuthorsPerPaperRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	total := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		n := authorsPerPaper(rng, 2.5)
		if n < 1 || n > 4 {
			t.Fatalf("authorsPerPaper = %d", n)
		}
		total += n
	}
	mean := float64(total) / trials
	if mean < 1.7 || mean > 3.2 {
		t.Errorf("mean authors per paper = %v, want roughly 2.5", mean)
	}
}
