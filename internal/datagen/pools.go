// Package datagen builds the deterministic synthetic datasets the
// reproduction is evaluated on. The paper used a DBLP extract (~100K
// nodes/~300K edges) and the IIT Bombay thesis database; neither is
// distributed, so these generators recreate the schemas, the scale, the
// skew (Zipfian authorship and citations), and — crucially — the specific
// entities behind every anecdote in Section 5.1, so the qualitative results
// can be checked mechanically.
package datagen

import (
	"math"
	"math/rand"

	"github.com/banksdb/banks/internal/index"
)

// Name pools. None of these tokens collide with the seeded anecdote
// keywords (mohan, gray, soumen, sunita, byron, seltzer, stonebraker,
// sudarshan, aditya, transaction), so queries about the anecdotes match
// only the intended entities plus deliberately seeded distractors.
var firstNames = []string{
	"Alan", "Barbara", "Carlos", "Diana", "Erik", "Fatima", "Giorgio",
	"Helena", "Ivan", "Julia", "Kenji", "Laura", "Miguel", "Nadia",
	"Oscar", "Petra", "Quentin", "Rosa", "Stefan", "Tanya", "Umberto",
	"Vera", "Walter", "Xenia", "Yusuf", "Zelda", "Andre", "Bianca",
	"Claus", "Dorothea", "Emil", "Frieda", "Gustav", "Hannelore",
	"Igor", "Jasmine", "Karl", "Lena", "Marco", "Nina", "Otto",
	"Paula", "Rainer", "Sofia", "Theo", "Ursula", "Viktor", "Wanda",
}

var lastNames = []string{
	"Albrecht", "Bergstrom", "Castellano", "Dietrich", "Eriksson",
	"Fontaine", "Giordano", "Hoffmann", "Ivanov", "Jansen", "Kowalski",
	"Lindqvist", "Moreau", "Nakamura", "Olsen", "Petrov", "Quintana",
	"Rossi", "Schneider", "Takahashi", "Ullman2", "Vasquez", "Weber",
	"Xavier", "Yamamoto", "Zimmermann", "Andersen", "Bianchi", "Cortez",
	"Dubois", "Engel", "Ferrari", "Gruber", "Hansen", "Iversen",
	"Jensen", "Keller", "Larsen", "Moretti", "Nielsen", "Oliveira",
	"Pedersen", "Richter", "Santos", "Tanaka", "Urbanek", "Vogel",
	"Wagner",
}

var titleWords = []string{
	"adaptive", "aggregation", "algebra", "algorithms", "analysis",
	"approximate", "architectures", "association", "benchmarking",
	"bitmap", "buffering", "caching", "classification", "clustering",
	"columnar", "compression", "concurrent", "constraints", "cost",
	"cube", "data", "decision", "declarative", "deductive", "design",
	"dimensional", "distributed", "dynamic", "efficient", "estimation",
	"evaluation", "execution", "extensible", "federated", "filtering",
	"frequent", "graphs", "hashing", "heterogeneous", "hierarchical",
	"incremental", "indexing", "integration", "intelligent", "joins",
	"knowledge", "languages", "learning", "locking", "maintenance",
	"materialized", "memory", "metadata", "mining", "models",
	"multidimensional", "networks", "normalization", "object",
	"on-line", "optimization", "parallel", "partitioning", "patterns",
	"performance", "persistent", "physical", "placement", "planning",
	"predicates", "processing", "profiles", "protocols", "quality",
	"queries", "ranking", "recovery", "relational", "replication",
	"rules", "sampling", "scalable", "schemas", "selectivity",
	"semantics", "semistructured", "sequences", "sharing", "similarity",
	"spatial", "statistics", "storage", "streams", "structures",
	"summarization", "support", "systems", "temporal", "tuning",
	"updates", "views", "visualization", "warehousing", "workloads",
}

// randomName draws "First Last" from the pools.
func randomName(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
}

// randomTitle draws a 3..3+span word title.
func randomTitle(rng *rand.Rand, span int) string {
	n := 3 + rng.Intn(span)
	out := make([]byte, 0, 12*n)
	for i := 0; i < n; i++ {
		w := titleWords[rng.Intn(len(titleWords))]
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, w...)
	}
	return string(out)
}

// zipfIndex draws an index in [0,n) with a Zipf-ish bias toward small
// indices (exponent ~1), giving the skewed authorship and citation
// distributions real bibliographies show.
func zipfIndex(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF of 1/x on [1, n+1).
	u := rng.Float64()
	x := math.Pow(float64(n+1), u)
	i := int(x) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// TitleWords returns the paper-title vocabulary the generators draw from;
// benchmark and evaluation harnesses use it to synthesize keyword
// workloads whose terms are guaranteed to hit the index.
func TitleWords() []string { return titleWords }

// ZipfTerms returns an n-draw Zipf(s=1.3) term stream over the
// single-token title vocabulary — the shared skewed workload behind the
// match-cache benchmarks and banks-eval's -buildbench experiment, defined
// once so BENCH_build.json and CI always measure the same distribution.
// Multi-token vocabulary words ("on-line") are excluded: as single search
// terms their prefixes match nothing.
func ZipfTerms(n int, seed int64) []string {
	var words []string
	for _, w := range titleWords {
		if len(index.Tokenize(w)) == 1 {
			words = append(words, w)
		}
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.3, 1, uint64(len(words)-1))
	out := make([]string, n)
	for i := range out {
		out[i] = words[zipf.Uint64()]
	}
	return out
}
