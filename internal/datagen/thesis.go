package datagen

import (
	"fmt"
	"math/rand"

	"github.com/banksdb/banks/internal/sqldb"
)

// ThesisConfig sizes the synthetic IIT-Bombay-style thesis database
// ("thousands of nodes and tens of thousands of edges" in §5).
type ThesisConfig struct {
	Departments int
	FacultyPer  int // faculty per department
	StudentsPer int // students per department
	Seed        int64
}

// SmallThesis is the test-sized configuration.
func SmallThesis() ThesisConfig {
	return ThesisConfig{Departments: 6, FacultyPer: 8, StudentsPer: 40, Seed: 2}
}

// PaperScaleThesis approximates the original dataset's scale.
func PaperScaleThesis() ThesisConfig {
	return ThesisConfig{Departments: 14, FacultyPer: 30, StudentsPer: 220, Seed: 2}
}

// Thesis anecdote entities (§5.1: "computer engineering" ranks the CSE
// department above theses with those title words; "sudarshan aditya" finds
// Aditya's thesis advised by Sudarshan).
const (
	DeptCSE        = 1 // department id
	FacSudarshan   = "FS01"
	StudentAditya  = "S0001"
	ThesisAditya   = "T0001"
	ProgramMTechCS = 1 // program id
)

// ThesisSchema returns the five-relation thesis schema.
func ThesisSchema() []*sqldb.TableSchema {
	return []*sqldb.TableSchema{
		{
			Name: "department",
			Columns: []sqldb.Column{
				{Name: "deptid", Type: sqldb.TypeInt, NotNull: true},
				{Name: "name", Type: sqldb.TypeText},
			},
			PrimaryKey: []string{"deptid"},
		},
		{
			Name: "program",
			Columns: []sqldb.Column{
				{Name: "progid", Type: sqldb.TypeInt, NotNull: true},
				{Name: "name", Type: sqldb.TypeText},
				{Name: "deptid", Type: sqldb.TypeInt},
			},
			PrimaryKey:  []string{"progid"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "deptid", RefTable: "department"}},
		},
		{
			Name: "faculty",
			Columns: []sqldb.Column{
				{Name: "facid", Type: sqldb.TypeText, NotNull: true},
				{Name: "name", Type: sqldb.TypeText},
				{Name: "deptid", Type: sqldb.TypeInt},
			},
			PrimaryKey:  []string{"facid"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "deptid", RefTable: "department"}},
		},
		{
			Name: "student",
			Columns: []sqldb.Column{
				{Name: "rollno", Type: sqldb.TypeText, NotNull: true},
				{Name: "name", Type: sqldb.TypeText},
				{Name: "progid", Type: sqldb.TypeInt},
			},
			PrimaryKey:  []string{"rollno"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "progid", RefTable: "program"}},
		},
		{
			Name: "thesis",
			Columns: []sqldb.Column{
				{Name: "thesisid", Type: sqldb.TypeText, NotNull: true},
				{Name: "title", Type: sqldb.TypeText},
				{Name: "rollno", Type: sqldb.TypeText},
				{Name: "advisor", Type: sqldb.TypeText},
			},
			PrimaryKey: []string{"thesisid"},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "rollno", RefTable: "student"},
				{Column: "advisor", RefTable: "faculty"},
			},
		},
	}
}

var deptNames = []string{
	"Computer Science and Engineering",
	"Electrical Systems",
	"Mechanical Systems",
	"Civil Infrastructure",
	"Chemical Processes",
	"Mathematics",
	"Physics",
	"Metallurgy",
	"Aerospace Propulsion",
	"Energy Studies",
	"Industrial Design",
	"Biosciences",
	"Earth Sciences",
	"Humanities",
}

// BuildThesis generates the thesis database deterministically.
func BuildThesis(cfg ThesisConfig) (*sqldb.Database, error) {
	if cfg.Departments > len(deptNames) {
		cfg.Departments = len(deptNames)
	}
	if cfg.Departments < 1 {
		cfg.Departments = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := sqldb.NewDatabase()
	for _, s := range ThesisSchema() {
		if _, err := db.CreateTable(s); err != nil {
			return nil, err
		}
	}
	progID := 0
	var progByDept [][]int
	for d := 0; d < cfg.Departments; d++ {
		deptid := d + 1
		if _, err := db.Insert("department", []sqldb.Value{sqldb.Int(int64(deptid)), sqldb.Text(deptNames[d])}); err != nil {
			return nil, err
		}
		var progs []int
		for _, pname := range []string{"MTech", "PhD"} {
			progID++
			if _, err := db.Insert("program", []sqldb.Value{
				sqldb.Int(int64(progID)), sqldb.Text(pname), sqldb.Int(int64(deptid)),
			}); err != nil {
				return nil, err
			}
			progs = append(progs, progID)
		}
		progByDept = append(progByDept, progs)
	}

	// Faculty. Sudarshan is in CSE.
	var facultyByDept [][]string
	fid := 0
	for d := 0; d < cfg.Departments; d++ {
		var fac []string
		for f := 0; f < cfg.FacultyPer; f++ {
			fid++
			id := fmt.Sprintf("F%04d", fid)
			name := randomName(rng)
			if d == DeptCSE-1 && f == 0 {
				id, name = FacSudarshan, "S. Sudarshan"
			}
			if _, err := db.Insert("faculty", []sqldb.Value{
				sqldb.Text(id), sqldb.Text(name), sqldb.Int(int64(d + 1)),
			}); err != nil {
				return nil, err
			}
			fac = append(fac, id)
		}
		facultyByDept = append(facultyByDept, fac)
	}

	// Students + theses. Aditya is a CSE student advised by Sudarshan; a
	// few distractor theses carry "computer"/"engineering" title words.
	sid := 0
	for d := 0; d < cfg.Departments; d++ {
		for s := 0; s < cfg.StudentsPer; s++ {
			sid++
			roll := fmt.Sprintf("R%05d", sid)
			name := randomName(rng)
			if d == DeptCSE-1 && s == 0 {
				roll, name = StudentAditya, "Aditya Birla"
			}
			prog := progByDept[d][rng.Intn(len(progByDept[d]))]
			if _, err := db.Insert("student", []sqldb.Value{
				sqldb.Text(roll), sqldb.Text(name), sqldb.Int(int64(prog)),
			}); err != nil {
				return nil, err
			}
			// ~70% of students have a thesis.
			if rng.Float64() > 0.7 && roll != StudentAditya {
				continue
			}
			tid := fmt.Sprintf("T%05d", sid)
			title := randomTitle(rng, 5)
			advisor := facultyByDept[d][rng.Intn(len(facultyByDept[d]))]
			if roll == StudentAditya {
				tid = ThesisAditya
				title = "Keyword Searching in Graph Structured Data"
				advisor = FacSudarshan
			} else if d != DeptCSE-1 && sid%97 == 3 {
				// Distractor titles for the "computer engineering" query.
				title = "Computer Aided Engineering of " + randomTitle(rng, 3)
			}
			if _, err := db.Insert("thesis", []sqldb.Value{
				sqldb.Text(tid), sqldb.Text(title), sqldb.Text(roll), sqldb.Text(advisor),
			}); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}
