package datagen

import (
	"fmt"
	"math/rand"

	"github.com/banksdb/banks/internal/sqldb"
)

// TPCDConfig sizes the TPC-D-style catalog used for the §2.1 prestige
// example ("if a query matches two parts the one with more orders would get
// a higher prestige").
type TPCDConfig struct {
	Parts     int
	Suppliers int
	Customers int
	Orders    int
	LinesPer  int // average lineitems per order
	Seed      int64
}

// SmallTPCD is the test-sized configuration.
func SmallTPCD() TPCDConfig {
	return TPCDConfig{Parts: 60, Suppliers: 20, Customers: 40, Orders: 150, LinesPer: 3, Seed: 3}
}

// Seeded parts demonstrating prestige: both match "steel widget"; the
// premium one appears in many lineitems.
const (
	PartPopular   = 1
	PartUnpopular = 2
)

// TPCDSchema returns part/supplier/customer/orders/lineitem.
func TPCDSchema() []*sqldb.TableSchema {
	return []*sqldb.TableSchema{
		{
			Name: "part",
			Columns: []sqldb.Column{
				{Name: "partkey", Type: sqldb.TypeInt, NotNull: true},
				{Name: "name", Type: sqldb.TypeText},
			},
			PrimaryKey: []string{"partkey"},
		},
		{
			Name: "supplier",
			Columns: []sqldb.Column{
				{Name: "suppkey", Type: sqldb.TypeInt, NotNull: true},
				{Name: "name", Type: sqldb.TypeText},
			},
			PrimaryKey: []string{"suppkey"},
		},
		{
			Name: "customer",
			Columns: []sqldb.Column{
				{Name: "custkey", Type: sqldb.TypeInt, NotNull: true},
				{Name: "name", Type: sqldb.TypeText},
			},
			PrimaryKey: []string{"custkey"},
		},
		{
			Name: "orders",
			Columns: []sqldb.Column{
				{Name: "orderkey", Type: sqldb.TypeInt, NotNull: true},
				{Name: "custkey", Type: sqldb.TypeInt},
			},
			PrimaryKey:  []string{"orderkey"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "custkey", RefTable: "customer"}},
		},
		{
			Name: "lineitem",
			Columns: []sqldb.Column{
				{Name: "orderkey", Type: sqldb.TypeInt},
				{Name: "partkey", Type: sqldb.TypeInt},
				{Name: "suppkey", Type: sqldb.TypeInt},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "orderkey", RefTable: "orders"},
				{Column: "partkey", RefTable: "part"},
				{Column: "suppkey", RefTable: "supplier"},
			},
		},
	}
}

var partAdjectives = []string{
	"anodized", "burnished", "chocolate", "copper", "forest", "frosted",
	"lavender", "metallic", "midnight", "olive", "plum", "powder",
	"sandy", "spring", "thistle",
}

var partNouns = []string{
	"bearing", "bracket", "casing", "coupling", "flange", "gasket",
	"gear", "hinge", "piston", "pulley", "rivet", "rotor", "spindle",
	"valve", "washer",
}

// BuildTPCD generates the order catalog deterministically.
func BuildTPCD(cfg TPCDConfig) (*sqldb.Database, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := sqldb.NewDatabase()
	for _, s := range TPCDSchema() {
		if _, err := db.CreateTable(s); err != nil {
			return nil, err
		}
	}
	for p := 1; p <= cfg.Parts; p++ {
		name := partAdjectives[rng.Intn(len(partAdjectives))] + " " +
			partNouns[rng.Intn(len(partNouns))] + fmt.Sprintf(" %d", p)
		switch p {
		case PartPopular:
			name = "premium steel widget"
		case PartUnpopular:
			name = "economy steel widget"
		}
		if _, err := db.Insert("part", []sqldb.Value{sqldb.Int(int64(p)), sqldb.Text(name)}); err != nil {
			return nil, err
		}
	}
	for s := 1; s <= cfg.Suppliers; s++ {
		if _, err := db.Insert("supplier", []sqldb.Value{
			sqldb.Int(int64(s)), sqldb.Text("Supplier " + randomName(rng)),
		}); err != nil {
			return nil, err
		}
	}
	for c := 1; c <= cfg.Customers; c++ {
		if _, err := db.Insert("customer", []sqldb.Value{
			sqldb.Int(int64(c)), sqldb.Text(randomName(rng)),
		}); err != nil {
			return nil, err
		}
	}
	for o := 1; o <= cfg.Orders; o++ {
		cust := 1 + rng.Intn(cfg.Customers)
		if _, err := db.Insert("orders", []sqldb.Value{
			sqldb.Int(int64(o)), sqldb.Int(int64(cust)),
		}); err != nil {
			return nil, err
		}
		lines := 1 + rng.Intn(2*cfg.LinesPer-1)
		for l := 0; l < lines; l++ {
			part := 1 + zipfIndex(rng, cfg.Parts)
			// The popular widget shows up in a fifth of all orders.
			if rng.Float64() < 0.2 {
				part = PartPopular
			}
			supp := 1 + rng.Intn(cfg.Suppliers)
			if _, err := db.Insert("lineitem", []sqldb.Value{
				sqldb.Int(int64(o)), sqldb.Int(int64(part)), sqldb.Int(int64(supp)),
			}); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}
